"""Differential cross-engine fuzzing: the oracle over generated specs.

For every :class:`~repro.specs.generate.random.GenSpec` the oracle runs
the same questions through independent implementations and byte-compares
the canonical answers:

* **sg** -- the packed and tuple exploration cores must derive the same
  canonical state-graph payload (BFS renaming makes admission order
  irrelevant, so any difference is an engine bug);
* **coding** -- the consistency/USC/CSC reports rendered from each
  explicit SG and the symbolic BDD engine's report must agree
  byte-for-byte (three engines, one
  :meth:`~repro.symbolic.csc.CodingReport.to_payload`);
* **pipeline** -- on small specs, a cold and a warm
  :func:`~repro.pipeline.jobs.run_synth_job` against one store must
  return identical JSON bytes; on the smallest, the job runs with
  verification enabled and a synthesized circuit must conform;
* **jobs** -- for sampled specs the same job is evaluated in a spawned
  worker process and byte-compared against the in-process result.

Engine exceptions are part of the comparison: each leg's outcome is a
payload digest *or* a normalized error record, so one engine failing
where another succeeds is a divergence, not a crash.  Divergences are
shrunk with :func:`~repro.specs.generate.shrink.shrink` under the
predicate "this oracle still diverges" and written as replayable repro
files (see ``docs/fuzzing.md`` for the format).

Everything the fuzz run prints or records -- per-spec records, the
corpus digest, the manifest -- is derived from canonical payloads, so a
run is byte-deterministic across processes and ``PYTHONHASHSEED``s.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...explore.budget import BudgetExceeded, ExplorationBudget
from ...obs import metrics, progress
from ...obs.trace import span as obs_span
from ...petri.net import PetriNetError
from ...petri.parser import write_stg
from ...petri.stg import STG
from ...pipeline.artifacts import sg_to_payload
from ...pipeline.config import FlowConfig
from ...pipeline.hashing import digest_payload
from ...sg.generator import generate_sg
from ...sg.graph import StateGraphError
from ...sg.properties import check_coding, coding_report
from .random import GenKnobs, GenSpec, generate_spec
from .shrink import ShrinkResult, shrink

__all__ = ["DEFAULT_BUDGET_STATES", "Divergence", "FuzzReport",
           "SpecResult", "check_spec", "run_fuzz", "spec_seed"]

#: Default per-spec exploration budget (states).
DEFAULT_BUDGET_STATES = 50_000
#: Specs above this many states skip the pipeline cold/warm leg.
DEFAULT_PIPELINE_LIMIT = 300
#: Specs above this many signals skip it too: CSC insertion enumeration
#: and prime-implicant minimization are exponential in signal count, and
#: the pipeline leg must stay a per-spec cost, not a per-spec stall.
DEFAULT_PIPELINE_SIGNAL_LIMIT = 8
#: Specs at or below this many states also synthesize and verify.
DEFAULT_CONFORMANCE_LIMIT = 120

#: The explicit engine pair whose SG payloads must byte-match.
SG_ENGINES: Tuple[str, ...] = ("packed", "tuples")


@dataclass
class Divergence:
    """One observed cross-engine disagreement."""

    oracle: str
    spec: GenSpec
    details: Dict[str, object]

    def to_payload(self) -> Dict[str, object]:
        return {"oracle": self.oracle,
                "spec": self.spec.name,
                "details": self.details}


@dataclass
class SpecResult:
    """The canonical per-spec fuzz record (what the corpus digest sees)."""

    spec: GenSpec
    transitions: int = 0
    signals: int = 0
    states: int = 0
    arcs: int = 0
    sg_digest: Optional[str] = None
    coding_digest: Optional[str] = None
    checks: List[str] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)

    def record(self) -> Dict[str, object]:
        """The run-independent projection hashed into the corpus digest."""
        return {
            "spec": self.spec.digest,
            "seed": self.spec.seed,
            "transitions": self.transitions,
            "signals": self.signals,
            "states": self.states,
            "arcs": self.arcs,
            "sg": self.sg_digest,
            "coding": self.coding_digest,
            "checks": list(self.checks),
            "divergences": [d.to_payload() for d in self.divergences],
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz run over a seeded corpus."""

    seed: int
    count: int
    knobs: GenKnobs
    results: List[SpecResult] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)
    shrunk: List[ShrinkResult] = field(default_factory=list)
    repro_paths: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def corpus_digest(self) -> str:
        """One digest over every per-spec record, the regression anchor."""
        return digest_payload([r.record() for r in self.results])

    @property
    def total_states(self) -> int:
        return sum(r.states for r in self.results)

    @property
    def max_states(self) -> int:
        return max((r.states for r in self.results), default=0)

    def check_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            for check in result.checks:
                counts[check] = counts.get(check, 0) + 1
        return counts

    def manifest(self) -> Dict[str, object]:
        """The JSON corpus manifest (the CI artifact)."""
        return {
            "seed": self.seed,
            "count": self.count,
            "knobs": self.knobs.to_payload(),
            "corpus_digest": self.corpus_digest,
            "divergences": [d.to_payload() for d in self.divergences],
            "specs": [{"genspec": r.spec.to_json(), **r.record()}
                      for r in self.results],
        }


def spec_seed(seed: int, index: int) -> int:
    """The per-spec seed of corpus member ``index`` under run ``seed``."""
    return seed * 1_000_003 + index


# ----------------------------------------------------------------------
# outcome capture
# ----------------------------------------------------------------------

def _normalized_error(error: BaseException) -> Dict[str, object]:
    """An engine failure as a comparable record (no wall-clock, no
    engine-specific wording -- two engines failing the same way must
    produce the same record)."""
    if isinstance(error, BudgetExceeded):
        exceedance = error.exceedance
        return {"error": "budget", "resource": exceedance.resource,
                "limit": exceedance.limit}
    return {"error": type(error).__name__}


def _outcome(fn: Callable[[], Dict[str, object]]) -> Dict[str, object]:
    try:
        return fn()
    except (PetriNetError, StateGraphError, BudgetExceeded,
            ValueError) as error:
        return _normalized_error(error)


def _sg_outcome(stg: STG, engine: str,
                budget: Optional[ExplorationBudget]
                ) -> Tuple[Dict[str, object], Optional[object]]:
    """(comparable outcome, live SG or None) for one explicit engine."""
    sg_box: List[object] = []

    def run() -> Dict[str, object]:
        sg = generate_sg(stg, engine=engine, budget=budget)
        sg_box.append(sg)
        return {"digest": digest_payload(sg_to_payload(sg)),
                "states": len(sg), "arcs": sg.arc_count()}

    outcome = _outcome(run)
    return outcome, (sg_box[0] if sg_box else None)


def _coding_outcome(fn: Callable[[], object]) -> Dict[str, object]:
    def run() -> Dict[str, object]:
        report = fn()
        return {"digest": digest_payload(report.to_payload())}

    return _outcome(run)


# ----------------------------------------------------------------------
# the per-spec oracle
# ----------------------------------------------------------------------

def check_spec(spec: GenSpec,
               budget_states: int = DEFAULT_BUDGET_STATES,
               pipeline_limit: int = DEFAULT_PIPELINE_LIMIT,
               pipeline_signal_limit: int = DEFAULT_PIPELINE_SIGNAL_LIMIT,
               conformance_limit: int = DEFAULT_CONFORMANCE_LIMIT,
               jobs_identity: bool = False) -> SpecResult:
    """Run every applicable oracle over one generated spec."""
    result = SpecResult(spec=spec)
    stg = spec.build()
    result.transitions = len(stg.net.transitions)
    result.signals = len(stg.signals)
    budget = ExplorationBudget(max_states=budget_states)

    # -- sg oracle: packed vs tuples canonical payloads ----------------
    outcomes: Dict[str, Dict[str, object]] = {}
    graphs: Dict[str, object] = {}
    for engine in SG_ENGINES:
        outcomes[engine], graphs[engine] = _sg_outcome(stg, engine, budget)
    result.checks.append("sg")
    reference = outcomes[SG_ENGINES[0]]
    result.states = int(reference.get("states", 0) or 0)
    result.arcs = int(reference.get("arcs", 0) or 0)
    result.sg_digest = reference.get("digest")
    if any(outcomes[engine] != reference for engine in SG_ENGINES[1:]):
        result.divergences.append(Divergence(
            oracle="sg", spec=spec, details=dict(outcomes)))
        return result  # downstream legs would only echo the same bug

    # -- coding oracle: explicit reports vs the symbolic engine --------
    codings = {engine: _coding_outcome(
                   lambda sg=graphs[engine]: coding_report(sg))
               for engine in SG_ENGINES if graphs[engine] is not None}
    if codings:
        codings["symbolic"] = _coding_outcome(
            lambda: check_coding(stg, engine="symbolic", name=stg.name))
        result.checks.append("coding")
        coding_reference = codings[SG_ENGINES[0]]
        result.coding_digest = coding_reference.get("digest")
        if any(outcome != coding_reference for outcome in codings.values()):
            result.divergences.append(Divergence(
                oracle="coding", spec=spec, details=dict(codings)))
            return result

    # -- pipeline oracle: cold vs warm byte-identity -------------------
    if (graphs[SG_ENGINES[0]] is not None
            and result.states <= pipeline_limit
            and result.signals <= pipeline_signal_limit):
        verify = result.states <= conformance_limit
        divergence = _pipeline_check(spec, stg, verify=verify,
                                     jobs_identity=jobs_identity,
                                     checks=result.checks)
        if divergence is not None:
            result.divergences.append(divergence)
    return result


def _job_payload_text(config_payload: Dict[str, object], stg_text: str,
                      name: str, store_dir: Optional[str]) -> str:
    """One synth job as canonical JSON text (spawn-safe module entry)."""
    from ...pipeline.jobs import run_synth_job
    from ...pipeline.store import ArtifactStore

    config = FlowConfig.from_payload(config_payload)
    store = None if store_dir is None else ArtifactStore(store_dir)
    payload = run_synth_job(config, stg_text, name=name, store=store)
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _pipeline_check(spec: GenSpec, stg: STG, verify: bool,
                    jobs_identity: bool,
                    checks: List[str]) -> Optional[Divergence]:
    import tempfile

    # One insertion round: enough to exercise resolve/synthesize/verify
    # determinism without paying the full insertion search per spec.
    config = FlowConfig.create(strategy="none", verify=verify,
                               max_csc_signals=1)
    config_payload = config.to_payload()
    stg_text = write_stg(stg)

    def run(store_dir: Optional[str]) -> Dict[str, object]:
        return {"text": _job_payload_text(config_payload, stg_text,
                                          stg.name, store_dir)}

    with tempfile.TemporaryDirectory(prefix="fuzz_store_") as store_dir:
        cold = _outcome(lambda: run(store_dir))
        warm = _outcome(lambda: run(store_dir))
    checks.append("pipeline")
    if cold != warm:
        return Divergence(oracle="pipeline", spec=spec,
                          details={"cold": cold, "warm": warm})
    if "error" in cold:
        return None
    payload = json.loads(cold["text"])
    if verify:
        checks.append("conformance")
        verification = payload.get("summary", {}).get("verification")
        # "skipped" (no circuit: unresolved CSC) and "state-limit"
        # (inconclusive) are not failures; any counterexample verdict is.
        verdict = None if verification is None \
            else verification.get("verdict")
        if verdict in ("non-conforming", "hazard", "deadlock",
                       "not-semi-modular"):
            return Divergence(
                oracle="conformance", spec=spec,
                details={"verdict": verdict,
                         "reason": verification.get("reason")})
    if jobs_identity:
        checks.append("jobs")
        remote = _outcome(lambda: {"text": _spawned_job(
            config_payload, stg_text, stg.name)})
        if remote != cold:
            return Divergence(oracle="jobs", spec=spec,
                              details={"serial": cold, "spawned": remote})
    return None


def _spawned_job(config_payload: Dict[str, object], stg_text: str,
                 name: str) -> str:
    import multiprocessing

    context = multiprocessing.get_context("spawn")
    with context.Pool(1) as pool:
        return pool.apply(_job_payload_text,
                          (config_payload, stg_text, name, None))


# ----------------------------------------------------------------------
# the corpus loop
# ----------------------------------------------------------------------

def _divergence_predicate(divergence: Divergence,
                          budget_states: int) -> Callable[[GenSpec], bool]:
    """"The same oracle still diverges" -- the shrinker's predicate."""
    oracle = divergence.oracle
    # Engine-level divergences re-check engines only (fast); pipeline
    # divergences need their leg re-run, with the spawn leg only when
    # the divergence actually lives there.
    pipeline_limit = 0 if oracle in ("sg", "coding") \
        else DEFAULT_PIPELINE_LIMIT

    def predicate(candidate: GenSpec) -> bool:
        result = check_spec(candidate, budget_states=budget_states,
                            pipeline_limit=pipeline_limit,
                            jobs_identity=(oracle == "jobs"))
        return any(d.oracle == oracle for d in result.divergences)

    return predicate


def _write_repro(divergence: Divergence, shrunk: ShrinkResult,
                 repro_dir: str) -> str:
    payload = {
        "oracle": divergence.oracle,
        "details": divergence.details,
        "genspec": shrunk.spec.to_json(),
        "shrunk_from": divergence.spec.to_json(),
        "shrink_log": shrunk.log,
        "shrink_attempts": shrunk.attempts,
        "transitions": len(shrunk.spec.build().net.transitions),
    }
    os.makedirs(repro_dir, exist_ok=True)
    path = os.path.join(
        repro_dir, f"{divergence.oracle}_{shrunk.spec.digest[:12]}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_fuzz(seed: int = 0, count: int = 100,
             knobs: Optional[GenKnobs] = None,
             budget_states: int = DEFAULT_BUDGET_STATES,
             pipeline_limit: int = DEFAULT_PIPELINE_LIMIT,
             conformance_limit: int = DEFAULT_CONFORMANCE_LIMIT,
             jobs_identity_every: int = 0,
             do_shrink: bool = True,
             repro_dir: Optional[str] = None) -> FuzzReport:
    """Fuzz ``count`` seeded specs through every differential oracle.

    ``jobs_identity_every=n`` runs the spawned-process identity leg on
    every n-th spec (0 disables it -- it costs a worker process spin-up
    per use).  With ``do_shrink`` each divergence is reduced to a
    minimal repro; ``repro_dir`` additionally writes the repro files.
    """
    import time

    knobs = knobs or GenKnobs()
    registry = metrics.registry()
    specs_total = registry.counter(
        "repro_fuzz_specs_total", "generated specs checked")
    divergences_total = registry.counter(
        "repro_fuzz_divergences_total", "cross-engine divergences found")
    shrink_steps_total = registry.counter(
        "repro_fuzz_shrink_steps_total", "accepted shrink edits")
    report = FuzzReport(seed=seed, count=count, knobs=knobs)
    started = time.perf_counter()
    with obs_span("fuzz:corpus", seed=seed, count=count):
        for index in range(count):
            spec = generate_spec(spec_seed(seed, index), knobs)
            jobs_leg = (jobs_identity_every > 0
                        and index % jobs_identity_every == 0)
            with obs_span("fuzz:spec", index=index, spec=spec.name):
                result = check_spec(
                    spec, budget_states=budget_states,
                    pipeline_limit=pipeline_limit,
                    conformance_limit=conformance_limit,
                    jobs_identity=jobs_leg)
            report.results.append(result)
            specs_total.inc()
            for divergence in result.divergences:
                divergences_total.inc()
                report.divergences.append(divergence)
                if not do_shrink:
                    continue
                with obs_span("fuzz:shrink", oracle=divergence.oracle,
                              spec=spec.name):
                    shrunk = shrink(spec, _divergence_predicate(
                        divergence, budget_states))
                shrink_steps_total.inc(shrunk.steps)
                report.shrunk.append(shrunk)
                if repro_dir is not None:
                    report.repro_paths.append(
                        _write_repro(divergence, shrunk, repro_dir))
            progress.emit("fuzz", {
                "spec": index + 1, "of": count,
                "states": result.states,
                "divergences": len(report.divergences)})
    report.seconds = time.perf_counter() - started
    return report
