"""Random live-safe STG generation and differential cross-engine fuzzing.

Three layers (see ``docs/fuzzing.md``):

* :mod:`.random` -- seeded, trace-based generation: a
  :class:`~repro.specs.generate.random.GenSpec` is reproducible from one
  line of JSON;
* :mod:`.shrink` -- greedy delta-debugging over derivation traces with a
  replayable shrink log;
* :mod:`.differential` -- the fuzz oracle comparing the packed, tuple
  and symbolic engines (plus pipeline cold/warm, process identity and
  conformance) byte-for-byte, shrinking any divergence to a minimal
  repro file.
"""

from .differential import (Divergence, FuzzReport, SpecResult, check_spec,
                           run_fuzz, spec_seed)
from .random import (GenKnobs, GenSpec, TraceError, build_from_trace,
                     generate_spec)
from .shrink import ShrinkResult, replay_shrink, shrink

__all__ = ["Divergence", "FuzzReport", "GenKnobs", "GenSpec",
           "ShrinkResult", "SpecResult", "TraceError", "build_from_trace",
           "check_spec", "generate_spec", "replay_shrink", "run_fuzz",
           "shrink", "spec_seed"]
