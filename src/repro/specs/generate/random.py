"""Seeded random live-safe STG generator.

Every generated spec is the value of a **derivation trace**: a list of
JSON step records, first the handshake fragments chained by
:func:`~repro.petri.compose.compose_all`, then correctness-preserving
mutations applied to the composed net.  :func:`build_from_trace` is the
deterministic ground truth -- the seeded RNG only *samples* a trace, it
never touches the net -- so a :class:`GenSpec` (seed, knobs, trace) is
reproducible from one line of JSON, the shrinker can edit the trace
instead of the net, and the canonical digest of the trace names the spec.

The three mutations preserve liveness, 1-safety and consistency by a
token-flow argument.  Each targets a place ``p`` with exactly one
producer ``u``, one consumer ``v`` and at most one initial token; in the
mutated net the affected path gains tokens only on ``u`` and loses them
only on ``v``, so its total token count equals the old count of ``p``
(at most one) in every reachable marking:

* ``insert`` subdivides ``u -> p -> v`` into
  ``u -> p -> x+ -> x- -> v`` (a fresh output signal in series);
* ``widen`` adds a parallel branch ``u -> x+ -> x- -> v`` next to ``p``,
  token-matched with ``p``'s initial marking (fresh concurrency);
* ``choice`` turns ``p`` into a free-choice place between two fresh
  input-signal bubbles ``p -> c+ -> c- -> merge -> v`` -- an input
  choice, which every downstream persistency check permits, whose
  branches return to all-low before merging so one marking still means
  one code.

Signal values follow the same flow (a mutation signal is high exactly
while its bubble holds the token), so alternation and
marking-determines-code both survive every step.
"""

from __future__ import annotations

import json
import random as _random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...petri.compose import compose_all
from ...petri.net import PetriNetError
from ...petri.stg import STG, SignalKind
from ...pipeline.hashing import digest_payload
from ..fragments import FRAGMENT_SHAPES, build_fragment

__all__ = ["GenKnobs", "GenSpec", "TraceError", "apply_step",
           "build_from_trace", "eligible_places", "generate_spec",
           "spec_name", "trace_digest"]

#: Shape sampling order -- fixed, so traces are hash-seed independent.
SHAPE_NAMES = tuple(sorted(FRAGMENT_SHAPES))

#: How many fresh signals each mutation op consumes.
MUTATION_SIGNAL_COST = {"insert": 1, "widen": 1, "choice": 2}


class TraceError(PetriNetError):
    """A derivation trace that does not replay (unknown place, bad op).

    Raised by :func:`build_from_trace`; the shrinker treats it as "this
    candidate edit is invalid", never as a failure of the spec.
    """


@dataclass(frozen=True)
class GenKnobs:
    """Size knobs of one generator draw (part of the spec's identity)."""

    max_fragments: int = 3
    max_mutations: int = 4
    max_signals: int = 12

    def to_payload(self) -> Dict[str, int]:
        return {"max_fragments": self.max_fragments,
                "max_mutations": self.max_mutations,
                "max_signals": self.max_signals}

    @classmethod
    def from_payload(cls, payload: Mapping[str, int]) -> "GenKnobs":
        return cls(max_fragments=int(payload["max_fragments"]),
                   max_mutations=int(payload["max_mutations"]),
                   max_signals=int(payload["max_signals"]))


def trace_digest(trace: Sequence[Mapping[str, object]]) -> str:
    """The canonical digest naming a derivation trace."""
    return digest_payload({"trace": list(trace)})


def spec_name(trace: Sequence[Mapping[str, object]]) -> str:
    """The model name of the spec a trace derives (digest-based)."""
    return f"gen_{trace_digest(trace)[:12]}"


@dataclass(frozen=True)
class GenSpec:
    """One reproducible generated spec: seed, knobs, derivation trace."""

    seed: int
    knobs: GenKnobs
    trace: Tuple[Mapping[str, object], ...]

    @property
    def digest(self) -> str:
        """Canonical digest of the derivation trace (the spec identity)."""
        return trace_digest(self.trace)

    @property
    def name(self) -> str:
        return spec_name(self.trace)

    def build(self) -> STG:
        """Replay the derivation trace into the concrete STG."""
        return build_from_trace(self.trace)

    def to_json(self) -> str:
        """One reproducing line of JSON."""
        return json.dumps({"seed": self.seed,
                           "knobs": self.knobs.to_payload(),
                           "trace": list(self.trace)},
                          sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "GenSpec":
        payload = json.loads(text)
        return cls(seed=int(payload["seed"]),
                   knobs=GenKnobs.from_payload(payload["knobs"]),
                   trace=tuple(payload["trace"]))


# ----------------------------------------------------------------------
# trace replay
# ----------------------------------------------------------------------

def eligible_places(stg: STG) -> List[str]:
    """Places a mutation may target, in net declaration order.

    Exactly one producer, one consumer and at most one initial token --
    the shape the correctness argument in the module docstring needs.
    """
    net = stg.net
    marking = net.marking_dict(net.initial_marking())
    result = []
    for place in net.place_names:
        if (len(net.preset_of_place(place)) == 1
                and len(net.postset_of_place(place)) == 1
                and marking.get(place, 0) <= 1):
            result.append(place)
    return result


def _endpoints(stg: STG, place: str) -> Tuple[str, str]:
    if not stg.net.has_place(place):
        raise TraceError(f"mutation targets unknown place {place!r}")
    producers = stg.net.preset_of_place(place)
    consumers = stg.net.postset_of_place(place)
    if len(producers) != 1 or len(consumers) != 1:
        raise TraceError(
            f"mutation target {place!r} is not a 1-producer/1-consumer "
            f"place ({len(producers)} producers, {len(consumers)} "
            f"consumers)")
    return next(iter(producers)), next(iter(consumers))


def _declare_fresh(stg: STG, signal: str, kind: SignalKind) -> None:
    if signal in stg.signals:
        raise TraceError(f"mutation signal {signal!r} already declared")
    stg.declare_signal(signal, kind)
    stg.set_initial_value(signal, 0)


def _apply_insert(stg: STG, place: str, signal: str) -> None:
    _, consumer = _endpoints(stg, place)
    _declare_fresh(stg, signal, SignalKind.OUTPUT)
    rise = stg.add_event(f"{signal}+")
    fall = stg.add_event(f"{signal}-")
    stg.net.remove_arc(place, consumer)
    stg.net.add_arc(place, rise)
    stg.connect(rise, fall)
    stg.connect(fall, consumer)


def _apply_widen(stg: STG, place: str, signal: str) -> None:
    producer, consumer = _endpoints(stg, place)
    _declare_fresh(stg, signal, SignalKind.OUTPUT)
    rise = stg.add_event(f"{signal}+")
    fall = stg.add_event(f"{signal}-")
    stg.connect(producer, rise)
    stg.connect(rise, fall)
    stg.connect(fall, consumer)
    marking = stg.net.marking_dict(stg.net.initial_marking())
    if marking.get(place, 0):
        # Token-match the new branch so every cycle through it keeps
        # exactly the token count of the cycle it parallels.
        stg.mark(f"<{producer},{rise}>")


def _apply_choice(stg: STG, place: str, signals: Sequence[str]) -> None:
    _, consumer = _endpoints(stg, place)
    if len(signals) != 2:
        raise TraceError(f"choice expects 2 signals, got {list(signals)}")
    merge = f"merge_{signals[0]}"
    if stg.net.has_place(merge) or stg.net.has_transition(merge):
        raise TraceError(f"choice merge place {merge!r} already exists")
    stg.net.add_place(merge)
    stg.net.remove_arc(place, consumer)
    for signal in signals:
        _declare_fresh(stg, signal, SignalKind.INPUT)
        rise = stg.add_event(f"{signal}+")
        fall = stg.add_event(f"{signal}-")
        stg.net.add_arc(place, rise)
        stg.connect(rise, fall)
        stg.net.add_arc(fall, merge)
    stg.net.add_arc(merge, consumer)


_MUTATION_OPS = {
    "insert": lambda stg, step: _apply_insert(stg, step["place"],
                                              step["signal"]),
    "widen": lambda stg, step: _apply_widen(stg, step["place"],
                                            step["signal"]),
    "choice": lambda stg, step: _apply_choice(stg, step["place"],
                                              step["signals"]),
}


def apply_step(stg: STG, step: Mapping[str, object]) -> None:
    """Apply one mutation step record to ``stg`` in place.

    Raises :class:`TraceError` when the step does not replay (unknown
    op, missing or ineligible place, clashing signal).
    """
    apply = _MUTATION_OPS.get(str(step.get("op")))
    if apply is None:
        raise TraceError(f"unknown derivation op {step.get('op')!r}")
    try:
        apply(stg, step)
    except PetriNetError as exc:
        if isinstance(exc, TraceError):
            raise
        raise TraceError(str(exc)) from None


def build_from_trace(trace: Sequence[Mapping[str, object]],
                     name: Optional[str] = None) -> STG:
    """Deterministically replay a derivation trace into an STG.

    Fragment steps must form a non-empty prefix; mutation steps follow
    and reference places of the net built so far by name.  Any step that
    does not replay raises :class:`TraceError` -- the contract the
    shrinker relies on to discard invalid trace edits.
    """
    steps = list(trace)
    fragments: List[Mapping[str, object]] = []
    while steps and steps[0].get("op") == "fragment":
        fragments.append(steps.pop(0))
    if not fragments:
        raise TraceError("derivation trace has no leading fragment steps")
    try:
        cells = [build_fragment(str(step["shape"]), index)
                 for index, step in enumerate(fragments)]
    except KeyError as exc:
        raise TraceError(str(exc)) from None
    stg = compose_all(cells)
    for step in steps:
        apply_step(stg, step)
    stg.name = name or spec_name(trace)
    return stg


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------

def _rng_for(seed: int, knobs: GenKnobs) -> _random.Random:
    # String seeding hashes the bytes, so draws are PYTHONHASHSEED- and
    # platform-independent (same device as the spec families).
    return _random.Random(
        ("genspec", seed, knobs.max_fragments, knobs.max_mutations,
         knobs.max_signals).__repr__())


def generate_spec(seed: int, knobs: Optional[GenKnobs] = None) -> GenSpec:
    """Sample one live-safe spec; same (seed, knobs) -> same trace."""
    knobs = knobs or GenKnobs()
    rng = _rng_for(seed, knobs)
    trace: List[Dict[str, object]] = [
        {"op": "fragment", "shape": rng.choice(SHAPE_NAMES)}
        for _ in range(rng.randint(1, max(1, knobs.max_fragments)))]
    stg = build_from_trace(trace)
    fresh = 0
    for _ in range(rng.randint(0, max(0, knobs.max_mutations))):
        headroom = knobs.max_signals - len(stg.signals)
        ops = sorted(op for op, cost in MUTATION_SIGNAL_COST.items()
                     if cost <= headroom)
        targets = eligible_places(stg)
        if not ops or not targets:
            break
        op = rng.choice(ops)
        place = rng.choice(targets)
        step: Dict[str, object] = {"op": op, "place": place}
        if op == "choice":
            step["signals"] = [f"c{fresh}", f"c{fresh + 1}"]
            fresh += 2
        else:
            step["signal"] = f"x{fresh}"
            fresh += 1
        _MUTATION_OPS[op](stg, step)
        trace.append(step)
    return GenSpec(seed=seed, knobs=knobs, trace=tuple(trace))
