"""Greedy delta-debugging over derivation traces.

The shrinker never edits a net: it edits the *trace* of a failing
:class:`~repro.specs.generate.random.GenSpec` and replays it, so every
intermediate candidate is itself a well-formed generated spec.  Three
families of edits, tried greedily to a fixpoint:

* **drop** one step (fragments or mutations; mutations first, since
  dropping a fragment renames every composed place);
* **simplify** one step in place -- a fragment shape moves down the
  ladder (``micropipeline -> fifo -> link``), a ``choice`` or ``widen``
  mutation collapses to a plain ``insert``;
* **retarget** -- when dropping or simplifying a fragment breaks the
  place names later mutations reference, the candidate rebinds each
  broken mutation to an eligible place of the rebuilt prefix (a
  parameter shrink).

A candidate is accepted when it still builds, the caller's failure
predicate still holds, and it is strictly smaller (fewer trace steps, or
the same steps deriving a net with fewer transitions -- places break
ties).  Accepted edits
are returned as a replayable shrink log: :func:`replay_shrink` applies
the log to the original spec and reproduces the shrunk spec
byte-for-byte.  At the fixpoint no single step is removable -- the
minimality the fuzz repro files promise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ...petri.compose import compose_all
from ..fragments import SIMPLER_SHAPE, build_fragment
from .random import (GenSpec, TraceError, apply_step, build_from_trace,
                     eligible_places, spec_name)

__all__ = ["ShrinkResult", "replay_shrink", "shrink"]

#: How many eligible prefix places a retargeting candidate scans.
RETARGET_FANOUT = 4

Trace = Tuple[Mapping[str, object], ...]
Predicate = Callable[[GenSpec], bool]


@dataclass
class ShrinkResult:
    """The minimal spec plus the replayable path that reached it."""

    spec: GenSpec
    log: List[Dict[str, object]] = field(default_factory=list)
    attempts: int = 0
    invalid: int = 0
    rounds: int = 0

    @property
    def steps(self) -> int:
        """Accepted shrink edits (the log length)."""
        return len(self.log)


def replay_shrink(spec: GenSpec, log: List[Mapping[str, object]]
                  ) -> GenSpec:
    """Apply a shrink log to ``spec``; returns the shrunk spec.

    Byte-identical to the :class:`ShrinkResult` the log came from --
    the property ``tests/test_generate.py`` pins.
    """
    trace = list(spec.trace)
    for entry in log:
        action = entry.get("action")
        if action == "drop":
            del trace[int(entry["index"])]
            # A fragment drop may carry the retargeting edits that keep
            # later mutations aimed at places that still exist.
            for index, step in entry.get("edits", ()):
                trace[int(index)] = step
        elif action == "edit":
            for index, step in entry["edits"]:
                trace[int(index)] = step
        else:
            raise ValueError(f"unknown shrink-log action {action!r}")
    return GenSpec(seed=spec.seed, knobs=spec.knobs, trace=tuple(trace))


def _size(trace: Trace) -> Optional[Tuple[int, int]]:
    """(transitions, places) of the derived net; None when it does not
    build.  Places break transition-count ties so e.g. a micropipeline
    still simplifies to the equally-wide but place-poorer fifo."""
    try:
        net = build_from_trace(trace).net
    except TraceError:
        return None
    return len(net.transitions), len(net.place_names)


def _split(trace: Trace) -> Tuple[List[Mapping[str, object]],
                                  List[Mapping[str, object]]]:
    fragments: List[Mapping[str, object]] = []
    rest = list(trace)
    while rest and rest[0].get("op") == "fragment":
        fragments.append(rest.pop(0))
    return fragments, rest


def _retargeted(fragments: List[Mapping[str, object]],
                mutations: List[Mapping[str, object]],
                choice: int) -> Optional[Trace]:
    """Rebind mutations whose target place died with the new prefix.

    Replays the trace incrementally; a mutation whose place is no longer
    eligible is re-aimed at eligible place ``choice`` (mod the count) of
    the net built so far.  Returns ``None`` when nothing needed
    rebinding (the plain candidate already covers that case).
    """
    if not fragments:
        return None
    try:
        stg = compose_all([build_fragment(str(step["shape"]), index)
                           for index, step in enumerate(fragments)])
    except KeyError:
        return None
    rebound = False
    result: List[Mapping[str, object]] = list(fragments)
    for step in mutations:
        candidates = eligible_places(stg)
        if not candidates:
            return None
        new_step = dict(step)
        if step.get("place") not in candidates:
            new_step["place"] = candidates[choice % len(candidates)]
            rebound = True
        try:
            apply_step(stg, new_step)
        except TraceError:
            return None
        result.append(new_step)
    if not rebound:
        return None
    return tuple(result)


def _edits_entry(old: Trace, new: Trace) -> Dict[str, object]:
    edits = [[index, new[index]] for index in range(len(old))
             if new[index] != old[index]]
    return {"action": "edit", "edits": edits}


def _candidates(trace: Trace) -> Iterator[Tuple[Dict[str, object], Trace]]:
    """All single-edit shrink candidates of ``trace``, smallest first."""
    fragments, mutations = _split(trace)
    # Drops, scanning from the end: mutations fall before the fragments
    # whose place names they depend on.  Dropping a fragment renames the
    # whole composition, so each fragment drop also comes in retargeted
    # variants that re-aim the orphaned mutations.
    for index in reversed(range(len(trace))):
        dropped = trace[:index] + trace[index + 1:]
        yield {"action": "drop", "index": index}, dropped
        if index >= len(fragments):
            continue
        fewer = [step for i, step in enumerate(fragments) if i != index]
        for choice in range(RETARGET_FANOUT):
            rebound = _retargeted(fewer, mutations, choice)
            if rebound is None:
                continue
            yield ({"action": "drop", "index": index,
                    "edits": _edits_entry(dropped, rebound)["edits"]},
                   rebound)
    # Fragment simplification down the shape ladder, with retargeting
    # variants for the mutations the rename breaks.
    for index, step in enumerate(fragments):
        for simpler in SIMPLER_SHAPE.get(str(step.get("shape")), ()):
            new_fragments = list(fragments)
            new_fragments[index] = {"op": "fragment", "shape": simpler}
            plain = tuple(new_fragments) + tuple(mutations)
            yield _edits_entry(trace, plain), plain
            for choice in range(RETARGET_FANOUT):
                rebound = _retargeted(new_fragments, mutations, choice)
                if rebound is not None:
                    yield _edits_entry(trace, rebound), rebound
    # Mutation simplification: choice/widen collapse to a plain insert.
    offset = len(fragments)
    for index, step in enumerate(mutations):
        op = str(step.get("op"))
        if op == "choice":
            simpler_step: Dict[str, object] = {
                "op": "insert", "place": step["place"],
                "signal": step["signals"][0]}
        elif op == "widen":
            simpler_step = {"op": "insert", "place": step["place"],
                            "signal": step["signal"]}
        else:
            continue
        new = (trace[:offset + index] + (simpler_step,)
               + trace[offset + index + 1:])
        yield {"action": "edit",
               "edits": [[offset + index, simpler_step]]}, new


def shrink(spec: GenSpec, predicate: Predicate,
           max_rounds: int = 64) -> ShrinkResult:
    """Reduce ``spec`` to a minimal failing spec under ``predicate``.

    ``predicate`` receives a buildable candidate :class:`GenSpec` and
    returns True when the failure still reproduces; exceptions it raises
    propagate (oracles decide what failure means, not the shrinker).
    Greedy first-improvement to a fixpoint, bounded by ``max_rounds``.
    """
    result = ShrinkResult(spec=spec)
    current = spec.trace
    size = _size(current)
    if size is None:
        raise TraceError(f"cannot shrink {spec_name(spec.trace)}: the "
                         "original trace does not build")
    while result.rounds < max_rounds:
        result.rounds += 1
        improved = False
        for entry, candidate_trace in _candidates(current):
            result.attempts += 1
            candidate_size = _size(candidate_trace)
            if candidate_size is None:
                result.invalid += 1
                continue
            shorter = len(candidate_trace) < len(current)
            if not shorter and candidate_size >= size:
                continue
            candidate = GenSpec(seed=spec.seed, knobs=spec.knobs,
                                trace=candidate_trace)
            if not predicate(candidate):
                continue
            current = candidate_trace
            size = candidate_size
            result.log.append(entry)
            improved = True
            break
        if not improved:
            break
    result.spec = GenSpec(seed=spec.seed, knobs=spec.knobs, trace=current)
    return result
