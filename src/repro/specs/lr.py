"""The LR-process (Section 3, Figs. 2-3, Table 1).

A control-transfer component with a passive port ``l`` and an active port
``r`` (handshake-component notation): control received on ``l`` is forwarded
to ``r``.  The CSP-like behaviour is ``*[ l? ; r! ; r? ; l! ]``, whose
4-phase expansion under the channel interface constraints is Fig. 2.f.

Table 1 compares seven implementations; the helpers here build each design
point so the bench can regenerate the table:

* ``Q-module (hand)`` -- the classical S-element reshuffling (the right
  handshake completes entirely before the left one is acknowledged);
* ``Full reduction``  -- concurrency reduced as far as validity allows;
* ``Max. concurrency`` -- the expansion itself, nothing reduced;
* ``li || ri`` etc.   -- full reduction preserving one pair of reset events.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..hse.spec import ChannelRole, PartialSpec
from ..hse.expansion import expand_four_phase
from ..petri.stg import STG, SignalKind


def lr_spec() -> PartialSpec:
    """``*[ l? ; r! ; r? ; l! ]`` with ``l`` passive and ``r`` active."""
    spec = PartialSpec("lr")
    spec.declare_channel("l", ChannelRole.PASSIVE)
    spec.declare_channel("r", ChannelRole.ACTIVE)
    for action in ("l?", "r!", "r?", "l!"):
        spec.add(action)
    spec.cycle("l?", "r!", "r?", "l!")
    spec.mark("<l!,l?>")
    return spec


def lr_expanded() -> STG:
    """Fig. 2.f: 4-phase expansion with maximal reset concurrency."""
    return expand_four_phase(lr_spec(), name="lr_4ph")


def q_module_stg() -> STG:
    """The hand-designed Q-module / S-element reshuffling.

    The right-hand handshake runs to completion (``ro+ ri+ ro- ri-``)
    strictly between ``li+`` and ``lo+``; the left handshake then finishes.
    This reshuffling needs one state signal (the code after ``li+`` repeats
    after ``ri-``), matching the "# CSC sign." column of Table 1.
    """
    stg = STG("lr_q_module")
    stg.declare_signal("li", SignalKind.INPUT)
    stg.declare_signal("ri", SignalKind.INPUT)
    stg.declare_signal("lo", SignalKind.OUTPUT)
    stg.declare_signal("ro", SignalKind.OUTPUT)
    order = ("li+", "ro+", "ri+", "ro-", "ri-", "lo+", "li-", "lo-")
    for event in order:
        stg.add_event(event)
    stg.cycle(*order)
    stg.mark("<lo-,li+>")
    for signal in ("li", "lo", "ri", "ro"):
        stg.set_initial_value(signal, 0)
    return stg


#: The Keep_Conc pairs of the four partially concurrent rows of Table 1.
#: ``li || ri`` preserves the concurrency of the two reset (falling) input
#: events, and so on; everything else is reduced as far as validity allows.
TABLE1_KEEP_CONC: Dict[str, List[Tuple[str, str]]] = {
    "li || ri": [("li-", "ri-")],
    "li || ro": [("li-", "ro-")],
    "lo || ri": [("lo-", "ri-")],
    "lo || ro": [("lo-", "ro-")],
}
