"""A small suite of classic asynchronous-controller STGs.

Beyond the paper's own case studies, these standard benchmarks (written in
the ``.g`` format the tool reads) exercise the flow on shapes the DAC
community uses: a pipeline latch controller, a VME-bus-style read
controller, a simple FIFO cell and a two-stage micropipeline.  All are
choice-free, consistent and speed-independent by construction.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List

from ..petri.parser import parse_stg
from ..petri.stg import STG

#: Half-handshake pipeline latch controller (the classic "half" benchmark
#: shape): input handshake (ri, ro) decoupled from output handshake (ai, ao).
HALF = """
.model half
.inputs ri ai
.outputs ro ao
.graph
ri+ ro+
ro+ ao+
ao+ ai+
ai+ ro-
ro- ri-
ri- ao-
ao- ai-
ai- ri+
.marking { <ai-,ri+> }
.initial_state !ri !ro !ai !ao
.end
"""

#: VME-bus-style read cycle: device select (dsr) triggers a bus transfer
#: (lds/ldtack) before the data acknowledge (d, dtack).
VME_READ = """
.model vme_read
.inputs dsr ldtack
.outputs lds d dtack
.graph
dsr+ lds+
lds+ ldtack+
ldtack+ d+
d+ dtack+
dtack+ dsr-
dsr- d-
d- dtack-
d- lds-
lds- ldtack-
ldtack- p0
dtack- p1
p0 dsr+
p1 dsr+
.marking { p0 p1 }
.initial_state !dsr !ldtack !lds !d !dtack
.end
"""

#: One-place FIFO cell: accept on the left, hand over to the right.
FIFO_CELL = """
.model fifo_cell
.inputs li ri
.outputs lo ro
.graph
li+ lo+
lo+ li-
li- lo-
lo- ro+
ro+ ri+
ri+ ro-
ro- ri-
ri- li+
.marking { <ri-,li+> }
.initial_state !li !lo !ri !ro
.end
"""

#: Two-stage micropipeline control: stage handshakes coupled through a
#: shared full/empty place.
MICROPIPELINE = """
.model micropipeline
.inputs rin aout
.outputs ain rout
.graph
rin+ ain+
ain+ rin-
rin- ain-
ain- rin+
ain+ full
full rout+
rout+ empty
empty ain+
rout+ aout+
aout+ rout-
rout- aout-
aout- rout+
.marking { <ain-,rin+> <aout-,rout+> empty }
.initial_state !rin !ain !rout !aout
.end
"""

_SOURCES: Dict[str, str] = {
    "half": HALF,
    "vme_read": VME_READ,
    "fifo_cell": FIFO_CELL,
    "micropipeline": MICROPIPELINE,
}


def suite_names() -> List[str]:
    """Names of all suite benchmarks."""
    return sorted(_SOURCES)


def source_text(name: str) -> str:
    """The raw ``.g`` source of one suite benchmark.

    The staged pipeline can be driven from ``.g`` text directly
    (``run_pipeline(config, stg_text=...)``), keying SG generation on the
    text digest without parsing first.
    """
    try:
        return _SOURCES[name]
    except KeyError:
        raise KeyError(f"unknown suite benchmark {name!r}; "
                       f"available: {suite_names()}") from None


def load(name: str) -> STG:
    """Parse one suite benchmark by name."""
    return parse_stg(source_text(name))


def load_all() -> Dict[str, STG]:
    """All suite benchmarks, parsed."""
    return {name: load(name) for name in suite_names()}


def sweep_sources() -> Dict[str, Callable[[], STG]]:
    """STG factories for the sweep registry (:mod:`repro.sweep.grid`).

    Factories rather than parsed STGs: sweep workers build specs lazily in
    their own process, so the suite rides through the parallel design-space
    sweep like the paper's own benchmarks do.
    """
    return {name: partial(load, name) for name in suite_names()}


def family_names() -> List[str]:
    """The registered parametric family kinds (:mod:`repro.specs.families`).

    Families are the suite's scaling axis: a member is named
    ``<kind>_<stages>[_s<seed>]`` (e.g. ``fifo_chain_8``,
    ``micropipeline_chain_4_s2``) and built on demand by
    :func:`load_family`.  They are deliberately *not* part of
    :func:`sweep_sources` -- members can dwarf the classic suite by
    orders of magnitude, so sweeps over them are opt-in.
    """
    from .families import family_names as _family_names
    return _family_names()


def load_family(name: str) -> STG:
    """Build one parametric family member from its name."""
    from .families import load_family as _load_family
    return _load_family(name)
