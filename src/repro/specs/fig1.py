"""The simple memory/processor controller of Fig. 1.

An operational cycle: the processor raises ``Req``, the controller answers
with ``Ack``; the processor may reset ``Req`` and immediately start a new
cycle without waiting for ``Ack`` to fall, so ``Req+`` and ``Ack-`` are
concurrent.  The resulting SG is consistent and output-persistent but has a
CSC conflict (states ``11*`` and ``1*1`` share the code 11), which makes it
the paper's introductory example of why encoding matters.
"""

from __future__ import annotations

from ..petri.stg import STG, SignalKind


def fig1_stg() -> STG:
    """The STG of Fig. 1.c (five implicit places, two tokens)."""
    stg = STG("fig1_controller")
    stg.declare_signal("Req", SignalKind.INPUT)
    stg.declare_signal("Ack", SignalKind.OUTPUT)
    for event in ("Req+", "Req-", "Ack+", "Ack-"):
        stg.add_event(event)
    stg.connect("Req+", "Ack+")
    stg.connect("Ack-", "Ack+")
    stg.connect("Ack+", "Req-")
    stg.connect("Req-", "Ack-")
    stg.connect("Req-", "Req+")
    stg.mark("<Req+,Ack+>", "<Ack-,Ack+>")
    stg.set_initial_value("Req", 1)
    stg.set_initial_value("Ack", 0)
    return stg


#: Binary codes of the two CSC-conflicting states (Ack, Req) = (1, 1).
CONFLICT_CODE = (1, 1)
