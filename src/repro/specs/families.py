"""Seeded parametric spec families: scalable N-stage pipelines.

The classic suite tops out at a few hundred SG states, which says nothing
about how the exploration core behaves at 10^5+ states.  These families
build arbitrarily long handshake chains out of per-stage ``.g`` cells
fused by :func:`repro.petri.compose.compose_all`: stage *i* talks to
stage *i+1* over a shared request/acknowledge pair ``(r{i+1}, a{i+1})``,
so the composed chain is a closed speed-independent control with inputs
``r0`` (data offered on the left) and ``a{n}`` (data accepted on the
right).  Stage count is the scaling axis: the reachable state space grows
exponentially with ``n`` while the net itself grows linearly.

``seed`` deterministically shuffles each cell's arc declaration order.
That permutes net/transition declaration order -- the order every
exploration engine iterates in -- without changing the behaviour, so
seed-invariance of canonical SG payloads is a meaningful equivalence
check, not a tautology.

Two shapes:

* ``fifo_chain`` -- one-place FIFO cells (the suite's ``fifo_cell``
  handshake, relabelled per stage): strictly sequential inside a cell,
  concurrency only across cells.
* ``micropipeline_chain`` -- two-phase-coupled micropipeline stages with
  an explicit full/empty capacity place per cell (the suite's
  ``micropipeline`` shape), giving denser per-stage concurrency.
"""

from __future__ import annotations

import random
import re
from typing import Callable, Dict, List

from ..petri.compose import compose_all
from ..petri.parser import parse_stg
from ..petri.stg import STG

__all__ = ["FAMILIES", "family_names", "fifo_chain", "load_family",
           "micropipeline_chain", "parse_family_name"]


def _cell(model: str, inputs: str, outputs: str, arcs: List[str],
          marking: str, initial: str, rng: random.Random) -> STG:
    rng.shuffle(arcs)
    text = (f".model {model}\n.inputs {inputs}\n.outputs {outputs}\n"
            ".graph\n" + "\n".join(arcs) + "\n"
            f".marking {{ {marking} }}\n.initial_state {initial}\n.end\n")
    return parse_stg(text)


def _fifo_cell(i: int, rng: random.Random) -> STG:
    l_req, l_ack = f"r{i}", f"a{i}"
    r_req, r_ack = f"r{i + 1}", f"a{i + 1}"
    arcs = [f"{l_req}+ {l_ack}+", f"{l_ack}+ {l_req}-",
            f"{l_req}- {l_ack}-", f"{l_ack}- {r_req}+",
            f"{r_req}+ {r_ack}+", f"{r_ack}+ {r_req}-",
            f"{r_req}- {r_ack}-", f"{r_ack}- {l_req}+"]
    return _cell(f"fifo{i}", f"{l_req} {r_ack}", f"{l_ack} {r_req}", arcs,
                 f"<{r_ack}-,{l_req}+>",
                 f"!{l_req} !{l_ack} !{r_req} !{r_ack}", rng)


def _micropipeline_cell(i: int, rng: random.Random) -> STG:
    l_req, l_ack = f"r{i}", f"a{i}"
    r_req, r_ack = f"r{i + 1}", f"a{i + 1}"
    full, empty = f"full{i}", f"empty{i}"
    arcs = [f"{l_req}+ {l_ack}+", f"{l_ack}+ {l_req}-",
            f"{l_req}- {l_ack}-", f"{l_ack}- {l_req}+",
            f"{l_ack}+ {full}", f"{full} {r_req}+",
            f"{r_req}+ {empty}", f"{empty} {l_ack}+",
            f"{r_req}+ {r_ack}+", f"{r_ack}+ {r_req}-",
            f"{r_req}- {r_ack}-", f"{r_ack}- {r_req}+"]
    return _cell(f"micropipeline{i}", f"{l_req} {r_ack}",
                 f"{l_ack} {r_req}", arcs,
                 f"<{l_ack}-,{l_req}+> <{r_ack}-,{r_req}+> {empty}",
                 f"!{l_req} !{l_ack} !{r_req} !{r_ack}", rng)


def _chain(kind: str, cell: Callable[[int, random.Random], STG],
           stages: int, seed: int, name: str = None) -> STG:
    if stages < 1:
        raise ValueError(f"{kind} needs at least 1 stage, got {stages}")
    rng = random.Random((kind, stages, seed).__repr__())
    composed = compose_all([cell(i, rng) for i in range(stages)],
                           name=name or f"{kind}_{stages}")
    return composed


def fifo_chain(stages: int, seed: int = 0, name: str = None) -> STG:
    """An ``stages``-deep chain of one-place FIFO cells."""
    return _chain("fifo_chain", _fifo_cell, stages, seed, name)


def micropipeline_chain(stages: int, seed: int = 0,
                        name: str = None) -> STG:
    """An ``stages``-deep chain of micropipeline control stages."""
    return _chain("micropipeline_chain", _micropipeline_cell, stages, seed,
                  name)


FAMILIES: Dict[str, Callable[..., STG]] = {
    "fifo_chain": fifo_chain,
    "micropipeline_chain": micropipeline_chain,
}

_NAME = re.compile(r"^(?P<kind>[a-z_]+)_(?P<stages>\d+)(_s(?P<seed>\d+))?$")


def family_names() -> List[str]:
    """The family kinds (parameterize as ``<kind>_<stages>[_s<seed>]``)."""
    return sorted(FAMILIES)


def parse_family_name(name: str):
    """Split ``fifo_chain_8`` / ``fifo_chain_8_s3`` into (kind, n, seed)."""
    match = _NAME.match(name)
    if match and match.group("kind") in FAMILIES:
        return (match.group("kind"), int(match.group("stages")),
                int(match.group("seed") or 0))
    raise KeyError(f"unknown family spec {name!r}; expected "
                   f"<kind>_<stages>[_s<seed>] with kind in "
                   f"{family_names()}")


def load_family(name: str) -> STG:
    """Build a family member from its parametric name."""
    kind, stages, seed = parse_family_name(name)
    return FAMILIES[kind](stages, seed=seed, name=name)
