"""Seeded parametric spec families: scalable N-stage pipelines.

The classic suite tops out at a few hundred SG states, which says nothing
about how the exploration core behaves at 10^5+ states.  These families
build arbitrarily long handshake chains out of per-stage ``.g`` cells
fused by :func:`repro.petri.compose.compose_all`: stage *i* talks to
stage *i+1* over a shared request/acknowledge pair ``(r{i+1}, a{i+1})``,
so the composed chain is a closed speed-independent control with inputs
``r0`` (data offered on the left) and ``a{n}`` (data accepted on the
right).  Stage count is the scaling axis: the reachable state space grows
exponentially with ``n`` while the net itself grows linearly.

``seed`` deterministically shuffles each cell's arc declaration order.
That permutes net/transition declaration order -- the order every
exploration engine iterates in -- without changing the behaviour, so
seed-invariance of canonical SG payloads is a meaningful equivalence
check, not a tautology.

Four shapes:

* ``fifo_chain`` -- one-place FIFO cells (the suite's ``fifo_cell``
  handshake, relabelled per stage): strictly sequential inside a cell,
  concurrency only across cells.
* ``micropipeline_chain`` -- two-phase-coupled micropipeline stages with
  an explicit full/empty capacity place per cell (the suite's
  ``micropipeline`` shape), giving denser per-stage concurrency.
* ``counter`` -- a divide-by-two ripple counter built from two-phase
  toggle cells: stage *i* toggles ``c{i+1}`` once per two toggles of
  ``c{i}``.  Toggle signals force the unfolded explicit path, so this
  family exercises the ``(marking, values)`` state representation.
* ``arbiter_tree`` -- a balanced binary tree of two-way mutex arbiters
  over ``N`` handshake clients (``N`` a power of two); requests
  propagate to a root granter, each node serializes its two children
  through an explicit mutex place.
"""

from __future__ import annotations

import random
import re
from typing import Callable, Dict, List

from ..petri.compose import compose_all
from ..petri.parser import parse_stg
from ..petri.stg import STG

__all__ = ["FAMILIES", "arbiter_tree", "counter", "family_names",
           "fifo_chain", "load_family", "micropipeline_chain",
           "parse_family_name"]


def _cell(model: str, inputs: str, outputs: str, arcs: List[str],
          marking: str, initial: str, rng: random.Random) -> STG:
    rng.shuffle(arcs)
    text = (f".model {model}\n.inputs {inputs}\n.outputs {outputs}\n"
            ".graph\n" + "\n".join(arcs) + "\n"
            f".marking {{ {marking} }}\n.initial_state {initial}\n.end\n")
    return parse_stg(text)


def _fifo_cell(i: int, rng: random.Random) -> STG:
    l_req, l_ack = f"r{i}", f"a{i}"
    r_req, r_ack = f"r{i + 1}", f"a{i + 1}"
    arcs = [f"{l_req}+ {l_ack}+", f"{l_ack}+ {l_req}-",
            f"{l_req}- {l_ack}-", f"{l_ack}- {r_req}+",
            f"{r_req}+ {r_ack}+", f"{r_ack}+ {r_req}-",
            f"{r_req}- {r_ack}-", f"{r_ack}- {l_req}+"]
    return _cell(f"fifo{i}", f"{l_req} {r_ack}", f"{l_ack} {r_req}", arcs,
                 f"<{r_ack}-,{l_req}+>",
                 f"!{l_req} !{l_ack} !{r_req} !{r_ack}", rng)


def _micropipeline_cell(i: int, rng: random.Random) -> STG:
    l_req, l_ack = f"r{i}", f"a{i}"
    r_req, r_ack = f"r{i + 1}", f"a{i + 1}"
    full, empty = f"full{i}", f"empty{i}"
    arcs = [f"{l_req}+ {l_ack}+", f"{l_ack}+ {l_req}-",
            f"{l_req}- {l_ack}-", f"{l_ack}- {l_req}+",
            f"{l_ack}+ {full}", f"{full} {r_req}+",
            f"{r_req}+ {empty}", f"{empty} {l_ack}+",
            f"{r_req}+ {r_ack}+", f"{r_ack}+ {r_req}-",
            f"{r_req}- {r_ack}-", f"{r_ack}- {r_req}+"]
    return _cell(f"micropipeline{i}", f"{l_req} {r_ack}",
                 f"{l_ack} {r_req}", arcs,
                 f"<{l_ack}-,{l_req}+> <{r_ack}-,{r_req}+> {empty}",
                 f"!{l_req} !{l_ack} !{r_req} !{r_ack}", rng)


def _counter_cell(i: int, rng: random.Random) -> STG:
    c, d = f"c{i}", f"c{i + 1}"
    a, b = f"ph_a{i}", f"ph_b{i}"
    q, f = f"pend{i}", f"free{i}"
    # a/b alternate the two input-toggle instances (divide-by-two phase);
    # the second toggle needs the output slot free and arms the output
    # toggle, so stage i+1 sees exactly one c{i+1}~ per two c{i}~.
    arcs = [f"{a} {c}~/1", f"{c}~/1 {b}",
            f"{b} {c}~/2", f"{f} {c}~/2",
            f"{c}~/2 {a}", f"{c}~/2 {q}",
            f"{q} {d}~", f"{d}~ {f}"]
    return _cell(f"counter{i}", c, d, arcs, f"{a} {f}",
                 f"!{c} !{d}", rng)


def _arbiter_cell(j: int, rng: random.Random) -> STG:
    # Heap indexing: node j arbitrates children 2j and 2j+1 toward its
    # parent channel (r{j}, g{j}).  Instance /k tags which side holds
    # the mutex; the side's closed client loop rides along so leaf
    # channels need no extra cells.
    mutex = f"m{j}"
    arcs: List[str] = []
    inputs, outputs, marking = [f"g{j}"], [f"r{j}"], [mutex]
    for k, c in ((1, 2 * j), (2, 2 * j + 1)):
        arcs += [f"r{c}+ r{j}+/{k}", f"{mutex} r{j}+/{k}",
                 f"r{j}+/{k} g{j}+/{k}", f"g{j}+/{k} g{c}+",
                 f"g{c}+ r{c}-", f"r{c}- r{j}-/{k}",
                 f"r{j}-/{k} g{j}-/{k}", f"g{j}-/{k} g{c}-",
                 f"g{c}- {mutex}", f"g{c}- r{c}+"]
        inputs.append(f"r{c}")
        outputs.append(f"g{c}")
        marking.append(f"<g{c}-,r{c}+>")
    signals = [f"r{2 * j}", f"g{2 * j}", f"r{2 * j + 1}",
               f"g{2 * j + 1}", f"r{j}", f"g{j}"]
    return _cell(f"arbiter{j}", " ".join(inputs), " ".join(outputs),
                 arcs, " ".join(marking),
                 " ".join(f"!{s}" for s in signals), rng)


def _grant_cell(rng: random.Random) -> STG:
    # The root's environment: grants every request unconditionally.
    arcs = ["r1+ g1+", "g1+ r1-", "r1- g1-", "g1- r1+"]
    return _cell("grant_root", "r1", "g1", arcs, "<g1-,r1+>",
                 "!r1 !g1", rng)


def _chain(kind: str, cell: Callable[[int, random.Random], STG],
           stages: int, seed: int, name: str = None) -> STG:
    if stages < 1:
        raise ValueError(f"{kind} needs at least 1 stage, got {stages}")
    rng = random.Random((kind, stages, seed).__repr__())
    composed = compose_all([cell(i, rng) for i in range(stages)],
                           name=name or f"{kind}_{stages}")
    return composed


def fifo_chain(stages: int, seed: int = 0, name: str = None) -> STG:
    """An ``stages``-deep chain of one-place FIFO cells."""
    return _chain("fifo_chain", _fifo_cell, stages, seed, name)


def micropipeline_chain(stages: int, seed: int = 0,
                        name: str = None) -> STG:
    """An ``stages``-deep chain of micropipeline control stages."""
    return _chain("micropipeline_chain", _micropipeline_cell, stages, seed,
                  name)


def counter(stages: int, seed: int = 0, name: str = None) -> STG:
    """An ``stages``-deep divide-by-two toggle ripple counter."""
    return _chain("counter", _counter_cell, stages, seed, name)


def arbiter_tree(leaves: int, seed: int = 0, name: str = None) -> STG:
    """A balanced mutex-arbiter tree over ``leaves`` clients.

    ``leaves`` must be a power of two and at least 2; the tree has
    ``leaves - 1`` arbiter nodes plus a root granter.
    """
    if leaves < 2 or leaves & (leaves - 1):
        raise ValueError(
            f"arbiter_tree needs a power-of-two leaf count >= 2, "
            f"got {leaves}")
    rng = random.Random(("arbiter_tree", leaves, seed).__repr__())
    cells = [_arbiter_cell(j, rng) for j in range(1, leaves)]
    cells.append(_grant_cell(rng))
    return compose_all(cells, name=name or f"arbiter_tree_{leaves}")


FAMILIES: Dict[str, Callable[..., STG]] = {
    "arbiter_tree": arbiter_tree,
    "counter": counter,
    "fifo_chain": fifo_chain,
    "micropipeline_chain": micropipeline_chain,
}

_NAME = re.compile(r"^(?P<kind>[a-z_]+)_(?P<stages>\d+)(_s(?P<seed>\d+))?$")


def family_names() -> List[str]:
    """The family kinds (parameterize as ``<kind>_<stages>[_s<seed>]``)."""
    return sorted(FAMILIES)


def parse_family_name(name: str):
    """Split ``fifo_chain_8`` / ``fifo_chain_8_s3`` into (kind, n, seed)."""
    match = _NAME.match(name)
    if match and match.group("kind") in FAMILIES:
        return (match.group("kind"), int(match.group("stages")),
                int(match.group("seed") or 0))
    raise KeyError(f"unknown family spec {name!r}; expected "
                   f"<kind>_<stages>[_s<seed>] with kind in "
                   f"{family_names()}")


def load_family(name: str) -> STG:
    """Build a family member from its parametric name."""
    kind, stages, seed = parse_family_name(name)
    return FAMILIES[kind](stages, seed=seed, name=name)
