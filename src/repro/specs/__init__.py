"""The paper's benchmark specifications: Fig. 1, LR, PAR, MMU, fragments."""
