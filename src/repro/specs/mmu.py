"""The MMU controller (Table 2, second case study of Section 8).

The paper evaluates reshuffling on the asynchronous Memory Management Unit
controller of Myers & Meng (1993).  The original schematic is not given in
the paper; following the substitution rule documented in DESIGN.md we
reconstruct a faithful-in-kind controller over the four channels the row
labels name -- ``b`` (bus request, passive), ``l`` (logical-address lookup,
active), ``m`` (mapped-address translation, active) and ``r`` (read,
active)::

    *[ b? ; l! ; l? ; ( m! ; m? || r! ; r? ) ; b! ]

The translation and the read run in parallel after the lookup; the 4-phase
expansion then leaves the reset transitions of all four handshakes
maximally concurrent, which is exactly the freedom Table 2 explores:

* ``original``          -- the maximally concurrent expansion, unreduced;
* ``original reduced``  -- beam-search reduction, default weight;
* ``csc reduced``       -- reduction biased towards CSC resolution (W -> 0);
* ``|| (x, y, z)``      -- full reduction preserving the mutual concurrency
  of the reset events of channels x, y and z.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Tuple

from ..hse.spec import ChannelRole, PartialSpec
from ..hse.expansion import expand_four_phase
from ..petri.stg import STG


def mmu_spec() -> PartialSpec:
    """The reconstructed MMU controller behaviour."""
    spec = PartialSpec("mmu")
    spec.declare_channel("b", ChannelRole.PASSIVE)
    spec.declare_channel("l", ChannelRole.ACTIVE)
    spec.declare_channel("m", ChannelRole.ACTIVE)
    spec.declare_channel("r", ChannelRole.ACTIVE)
    for action in ("b?", "l!", "l?", "m!", "m?", "r!", "r?", "b!"):
        spec.add(action)
    spec.chain("b?", "l!", "l?")
    spec.chain("l?", "m!", "m?", "b!")
    spec.chain("l?", "r!", "r?", "b!")
    spec.connect("b!", "b?")
    spec.mark("<b!,b?>")
    return spec


def mmu_expanded() -> STG:
    """4-phase expansion with maximal reset concurrency ("original")."""
    return expand_four_phase(mmu_spec(), name="mmu_4ph")


def _reset_events(channel: str) -> List[str]:
    return [f"{channel}i-", f"{channel}o-"]


def keep_conc_for(channels: Tuple[str, ...]) -> List[Tuple[str, str]]:
    """Keep_Conc preserving reset concurrency among the named channels.

    Every falling wire event of one listed channel stays concurrent with
    every falling wire event of the other listed channels.
    """
    pairs: List[Tuple[str, str]] = []
    for first, second in combinations(channels, 2):
        for event_a in _reset_events(first):
            for event_b in _reset_events(second):
                pairs.append((event_a, event_b))
    return pairs


#: The four partially concurrent rows of Table 2.
TABLE2_KEEP_CONC: Dict[str, Tuple[str, ...]] = {
    "|| (b, l, r)": ("b", "l", "r"),
    "|| (b, m, r)": ("b", "m", "r"),
    "|| (b, l, m)": ("b", "l", "m"),
    "|| (l, m, r)": ("l", "m", "r"),
}
