"""The end-to-end synthesis flow of Fig. 4.

``run_flow`` strings together every stage the paper describes:

1. handshake expansion with maximal reset concurrency under interface
   constraints (:mod:`repro.hse`);
2. state-graph generation (:mod:`repro.sg.generator`);
3. concurrency reduction by beam search over forward reductions, honouring
   ``Keep_Conc`` (:mod:`repro.reduction`);
4. CSC resolution by state-signal insertion (:mod:`repro.encoding`);
5. logic synthesis, 2-input decomposition and technology mapping
   (:mod:`repro.circuit`);
6. optional STG re-derivation for the reduced SG (:mod:`repro.sg.resynthesis`);
7. performance analysis: critical cycle and input events on it
   (:mod:`repro.timing`);
8. optional gate-level verification of the synthesized netlist against the
   resolved SG: conformance, hazard-freedom, deadlock-freedom and
   semi-modularity (:mod:`repro.verify`, ``verify=True``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from .circuit.library import DEFAULT_LIBRARY, Library
from .circuit.synthesize import (CircuitImplementation, estimate_circuit_area,
                                 synthesize_circuit)
from .encoding.insertion import InsertionChoice, ResolutionResult, resolve_csc
from .hse.constraints import InterfaceConstraint
from .hse.expansion import expand
from .hse.spec import PartialSpec
from .petri.stg import STG
from .reduction.explore import (ExplorationResult, ExplorationStats,
                                full_reduction_with_stats, reduce_concurrency)
from .sg.generator import generate_sg
from .sg.graph import StateGraph
from .sg.properties import check_implementability, csc_conflicts
from .sg.resynthesis import ResynthesisError, resynthesise_stg
from .timing.critical_cycle import CycleReport, TimingError, critical_cycle
from .timing.delays import TABLE1_DELAYS, DelayModel
from .verify.certificate import VerificationReport, skipped_report
from .verify.conformance import DEFAULT_MAX_STATES, check_conformance


@dataclass
class ImplementationReport:
    """Everything Tables 1 and 2 report about one design point."""

    name: str
    sg: StateGraph
    resolved_sg: StateGraph
    insertions: List[InsertionChoice]
    csc_resolved: bool
    circuit: Optional[CircuitImplementation]
    cycle: Optional[CycleReport]
    stg: Optional[STG] = None
    area_estimate: Optional[float] = None
    verification: Optional[VerificationReport] = None

    @property
    def csc_signal_count(self) -> int:
        return len(self.insertions)

    @property
    def area(self) -> Optional[float]:
        """Mapped area; falls back to the optimistic estimate when CSC is
        unresolved (flagged by :attr:`csc_resolved`)."""
        if self.circuit is not None:
            return self.circuit.area
        return self.area_estimate

    @property
    def cycle_time(self) -> Optional[float]:
        return self.cycle.cycle_time if self.cycle is not None else None

    @property
    def input_event_count(self) -> Optional[int]:
        return self.cycle.input_event_count if self.cycle is not None else None

    @property
    def verified(self) -> Optional[bool]:
        """True/False per the verification verdict; None when not verified."""
        return None if self.verification is None else self.verification.ok

    def row(self) -> Tuple[str, Optional[float], int, Optional[float], Optional[int]]:
        """(circuit, area, #CSC, critical cycle, input events) as in the tables."""
        return (self.name, self.area, self.csc_signal_count,
                self.cycle_time, self.input_event_count)


def implement(sg: StateGraph, name: Optional[str] = None,
              delays: DelayModel = TABLE1_DELAYS,
              max_csc_signals: int = 4,
              library: Library = DEFAULT_LIBRARY,
              resynthesise: bool = False,
              exact_covers: bool = True,
              verify: bool = False,
              verify_model: str = "atomic",
              verify_max_states: int = DEFAULT_MAX_STATES) -> ImplementationReport:
    """Resolve CSC, synthesize the circuit and measure it.

    With ``verify=True`` the synthesized netlist is checked against the
    resolved SG (conformance, hazard-freedom, deadlock-freedom,
    semi-modularity; see :mod:`repro.verify`) and the certificate lands on
    :attr:`ImplementationReport.verification`.  Design points without a
    circuit (unresolved CSC, toggle specs) get a ``skipped`` report.
    """
    resolution = resolve_csc(sg, max_signals=max_csc_signals)
    circuit: Optional[CircuitImplementation] = None
    area_estimate: Optional[float] = None
    if resolution.resolved:
        try:
            circuit = synthesize_circuit(resolution.sg, exact=exact_covers,
                                         library=library)
        except ValueError:
            circuit = None  # 2-phase (toggle) SGs have no SOP logic
    else:
        try:
            area_estimate = estimate_circuit_area(resolution.sg, library)
        except ValueError:
            area_estimate = None  # 2-phase (toggle) SGs have no SOP logic
    cycle: Optional[CycleReport] = None
    try:
        cycle = critical_cycle(resolution.sg, delays)
    except TimingError:
        cycle = None
    stg: Optional[STG] = None
    if resynthesise:
        try:
            stg = resynthesise_stg(resolution.sg)
        except ResynthesisError:
            stg = None
    verification: Optional[VerificationReport] = None
    if verify:
        report_name = name or sg.name
        if circuit is not None:
            verification = check_conformance(
                circuit.netlist, resolution.sg, model=verify_model,
                max_states=verify_max_states, name=report_name)
        else:
            verification = skipped_report(
                report_name, "no synthesized circuit (unresolved CSC or "
                "toggle specification)", model=verify_model)
    return ImplementationReport(
        name=name or sg.name,
        sg=sg,
        resolved_sg=resolution.sg,
        insertions=resolution.insertions,
        csc_resolved=resolution.resolved,
        circuit=circuit,
        cycle=cycle,
        stg=stg,
        area_estimate=area_estimate,
        verification=verification,
    )


@dataclass
class FlowResult:
    """Artifacts of every stage of the Fig. 4 flow."""

    spec: Optional[PartialSpec]
    expanded: Optional[STG]
    initial_sg: StateGraph
    exploration: Optional[ExplorationResult]
    report: ImplementationReport
    reduction_stats: Optional[ExplorationStats] = None

    @property
    def reduced_sg(self) -> StateGraph:
        return self.report.sg


#: The reduction strategies :func:`run_flow_stg` understands (the sweep
#: subsystem exposes the same axis): ``none`` keeps maximal concurrency,
#: ``beam``/``best-first`` run the Fig. 9 search, ``full`` drives
#: concurrency as low as validity allows.
STRATEGIES = ("none", "beam", "best-first", "full")


def reduce_sg(initial_sg: StateGraph,
              strategy: str = "best-first",
              keep_conc: Iterable[Tuple[str, str]] = (),
              size_frontier: Optional[int] = None,
              weight: float = 0.5,
              max_explored: Optional[int] = None,
              ) -> Tuple[StateGraph, Optional[ExplorationResult],
                         Optional[ExplorationStats]]:
    """Apply one reduction strategy; returns (chosen SG, exploration, stats).

    ``size_frontier`` and ``max_explored`` default per strategy (4/10k for
    the searches, 6/20k for ``full``) when left as ``None``.
    """
    if strategy == "none":
        return initial_sg, None, None
    if strategy == "full":
        chosen, stats = full_reduction_with_stats(
            initial_sg, keep_conc=keep_conc,
            size_frontier=6 if size_frontier is None else size_frontier,
            weight=weight,
            max_explored=20_000 if max_explored is None else max_explored)
        return chosen, None, stats
    if strategy not in ("beam", "best-first"):
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"expected one of {STRATEGIES}")
    exploration = reduce_concurrency(
        initial_sg, keep_conc=keep_conc,
        size_frontier=4 if size_frontier is None else size_frontier,
        weight=weight,
        max_explored=10_000 if max_explored is None else max_explored,
        strategy=strategy)
    return exploration.best, exploration, exploration.stats


def run_flow_stg(stg: Optional[STG],
                 strategy: str = "best-first",
                 keep_conc: Iterable[Tuple[str, str]] = (),
                 size_frontier: Optional[int] = None,
                 weight: float = 0.5,
                 max_explored: Optional[int] = None,
                 delays: DelayModel = TABLE1_DELAYS,
                 max_csc_signals: int = 4,
                 library: Library = DEFAULT_LIBRARY,
                 resynthesise: bool = False,
                 name: Optional[str] = None,
                 spec: Optional[PartialSpec] = None,
                 initial_sg: Optional[StateGraph] = None,
                 verify: bool = False,
                 verify_model: str = "atomic") -> FlowResult:
    """The Fig. 4 pipeline from a complete STG (stages 2-7).

    This is the entry point the sweep subsystem drives: one call evaluates
    one design point (``strategy`` x ``weight`` x ``keep_conc``).  Passing a
    pre-generated ``initial_sg`` skips SG generation (sweep workers cache
    the SG per spec).
    """
    if initial_sg is None:
        if stg is None:
            raise ValueError("run_flow_stg needs an STG or a pre-generated SG")
        initial_sg = generate_sg(stg)
    chosen, exploration, stats = reduce_sg(
        initial_sg, strategy=strategy, keep_conc=keep_conc,
        size_frontier=size_frontier, weight=weight, max_explored=max_explored)
    report = implement(chosen,
                       name=name or (stg.name if stg is not None
                                     else initial_sg.name),
                       delays=delays, max_csc_signals=max_csc_signals,
                       library=library, resynthesise=resynthesise,
                       verify=verify, verify_model=verify_model)
    return FlowResult(spec=spec, expanded=stg, initial_sg=initial_sg,
                      exploration=exploration, report=report,
                      reduction_stats=stats)


def run_flow(spec: PartialSpec,
             phases: int = 4,
             extra_constraints: Sequence[InterfaceConstraint] = (),
             keep_conc: Iterable[Tuple[str, str]] = (),
             reduce: bool = True,
             full: bool = False,
             strategy: str = "best-first",
             size_frontier: Optional[int] = None,
             weight: float = 0.5,
             max_explored: Optional[int] = None,
             delays: DelayModel = TABLE1_DELAYS,
             max_csc_signals: int = 4,
             library: Library = DEFAULT_LIBRARY,
             resynthesise: bool = False,
             name: Optional[str] = None,
             verify: bool = False,
             verify_model: str = "atomic") -> FlowResult:
    """The complete Fig. 4 pipeline from a partial specification.

    ``reduce=False`` keeps maximal concurrency (the "Max. concurrency" rows);
    ``full=True`` drives concurrency as low as validity allows (the "Full
    reduction" row).  Otherwise ``strategy`` selects the Fig. 9 beam or the
    best-first search, run with the given frontier size and weight ``W``.
    """
    if not reduce:
        strategy = "none"
    elif full:
        strategy = "full"
    expanded = expand(spec, phases=phases, extra_constraints=extra_constraints)
    return run_flow_stg(expanded, strategy=strategy, keep_conc=keep_conc,
                        size_frontier=size_frontier, weight=weight,
                        max_explored=max_explored, delays=delays,
                        max_csc_signals=max_csc_signals, library=library,
                        resynthesise=resynthesise,
                        name=name or spec.name, spec=spec,
                        verify=verify, verify_model=verify_model)


def implement_stg(stg: STG, name: Optional[str] = None,
                  delays: DelayModel = TABLE1_DELAYS,
                  **kwargs) -> ImplementationReport:
    """Convenience: generate the SG of a complete STG and implement it."""
    sg = generate_sg(stg)
    return implement(sg, name=name or stg.name, delays=delays, **kwargs)
