"""The end-to-end synthesis flow of Fig. 4.

``run_flow`` strings together every stage the paper describes:

1. handshake expansion with maximal reset concurrency under interface
   constraints (:mod:`repro.hse`);
2. state-graph generation (:mod:`repro.sg.generator`);
3. concurrency reduction by beam search over forward reductions, honouring
   ``Keep_Conc`` (:mod:`repro.reduction`);
4. CSC resolution by state-signal insertion (:mod:`repro.encoding`);
5. logic synthesis, 2-input decomposition and technology mapping
   (:mod:`repro.circuit`);
6. optional STG re-derivation for the reduced SG (:mod:`repro.sg.resynthesis`);
7. performance analysis: critical cycle and input events on it
   (:mod:`repro.timing`);
8. optional gate-level verification of the synthesized netlist against the
   resolved SG (:mod:`repro.verify`, ``verify=True``).

Since the pipeline refactor these entry points are thin wrappers over
:func:`repro.pipeline.run_pipeline`: each call builds one frozen
:class:`~repro.pipeline.FlowConfig` (the single source of truth for every
knob) and evaluates it through the staged, content-addressed pipeline.
The keyword signatures below are kept for compatibility -- new code should
construct a :class:`FlowConfig` directly -- and all of them accept an
optional ``store`` (an :class:`~repro.pipeline.ArtifactStore`) to get
stage-granular warm-run resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from .circuit.library import DEFAULT_LIBRARY, Library
from .circuit.synthesize import CircuitImplementation
from .encoding.insertion import InsertionChoice
from .hse.constraints import InterfaceConstraint
from .hse.spec import PartialSpec
from .petri.stg import STG
from .pipeline.config import STRATEGIES, FlowConfig
from .pipeline.stages import (PipelineResult, ReductionSummary, run_pipeline,
                              run_reduction)
from .pipeline.store import ArtifactStore
from .reduction.explore import ExplorationResult, ExplorationStats
from .sg.graph import StateGraph
from .timing.critical_cycle import CycleReport
from .timing.delays import TABLE1_DELAYS, DelayModel
from .verify.certificate import VerificationReport
from .verify.conformance import DEFAULT_MAX_STATES

__all__ = [
    "STRATEGIES", "FlowResult", "ImplementationReport", "implement",
    "implement_stg", "reduce_sg", "run_flow", "run_flow_stg",
]


@dataclass
class ImplementationReport:
    """Everything Tables 1 and 2 report about one design point."""

    name: str
    sg: StateGraph
    resolved_sg: StateGraph
    insertions: List[InsertionChoice]
    csc_resolved: bool
    circuit: Optional[CircuitImplementation]
    cycle: Optional[CycleReport]
    stg: Optional[STG] = None
    area_estimate: Optional[float] = None
    verification: Optional[VerificationReport] = None

    @property
    def csc_signal_count(self) -> int:
        """Number of inserted state signals."""
        return len(self.insertions)

    @property
    def area(self) -> Optional[float]:
        """Mapped area; falls back to the optimistic estimate when CSC is
        unresolved (flagged by :attr:`csc_resolved`)."""
        if self.circuit is not None:
            return self.circuit.area
        return self.area_estimate

    @property
    def cycle_time(self) -> Optional[float]:
        """Critical cycle period, if timing analysis succeeded."""
        return self.cycle.cycle_time if self.cycle is not None else None

    @property
    def input_event_count(self) -> Optional[int]:
        """Input events on the critical cycle, if analyzed."""
        return self.cycle.input_event_count if self.cycle is not None else None

    @property
    def verified(self) -> Optional[bool]:
        """True/False per the verification verdict; None when not verified."""
        return None if self.verification is None else self.verification.ok

    def row(self) -> Tuple[str, Optional[float], int, Optional[float], Optional[int]]:
        """(circuit, area, #CSC, critical cycle, input events) as in the tables."""
        return (self.name, self.area, self.csc_signal_count,
                self.cycle_time, self.input_event_count)


@dataclass
class FlowResult:
    """Artifacts of every stage of the Fig. 4 flow.

    ``exploration`` is the live :class:`ExplorationResult` when this
    process ran the search, or a :class:`ReductionSummary` (costs + stats,
    no per-step history) when a warm store served the reduce stage.
    """

    spec: Optional[PartialSpec]
    expanded: Optional[STG]
    initial_sg: StateGraph
    exploration: Optional[Union[ExplorationResult, ReductionSummary]]
    report: ImplementationReport
    reduction_stats: Optional[ExplorationStats] = None
    pipeline: Optional[PipelineResult] = None
    #: Coding report of the symbolic pre-flight check, present only when
    #: the flow ran with ``check_engine="symbolic"``.
    coding: Optional[object] = None

    @property
    def reduced_sg(self) -> StateGraph:
        """The chosen reduced state graph (same as ``report.sg``)."""
        return self.report.sg


def _implementation_report(result: PipelineResult,
                           name: str) -> ImplementationReport:
    """Assemble the classic report from a pipeline evaluation."""
    return ImplementationReport(
        name=name,
        sg=result.reduced_sg(),
        resolved_sg=result.resolved_sg(),
        insertions=result.insertions(),
        csc_resolved=result.csc_resolved(),
        circuit=result.circuit(),
        cycle=result.cycle(),
        stg=result.resynthesised_stg(),
        area_estimate=result.area_estimate(),
        verification=result.verification(),
    )


def implement(sg: StateGraph, name: Optional[str] = None,
              delays: DelayModel = TABLE1_DELAYS,
              max_csc_signals: int = 4,
              library: Library = DEFAULT_LIBRARY,
              resynthesise: bool = False,
              exact_covers: bool = True,
              verify: bool = False,
              verify_model: str = "atomic",
              verify_max_states: int = DEFAULT_MAX_STATES,
              store: Optional[ArtifactStore] = None) -> ImplementationReport:
    """Resolve CSC, synthesize the circuit and measure it (stages 4-8).

    Deprecated keyword front end: builds a ``strategy="none"``
    :class:`FlowConfig` and evaluates the pipeline on ``sg`` as-is.
    With ``verify=True`` the synthesized netlist is checked against the
    resolved SG and the certificate lands on
    :attr:`ImplementationReport.verification`; design points without a
    circuit (unresolved CSC, toggle specs) get a ``skipped`` report.
    """
    config = FlowConfig.create(
        strategy="none", delays=delays, max_csc_signals=max_csc_signals,
        library=library, resynthesise=resynthesise, exact_covers=exact_covers,
        verify=verify, verify_model=verify_model,
        verify_max_states=verify_max_states)
    result = run_pipeline(config, initial_sg=sg, name=name or sg.name,
                          store=store)
    return _implementation_report(result, name or sg.name)


def reduce_sg(initial_sg: StateGraph,
              strategy: str = "best-first",
              keep_conc: Iterable[Tuple[str, str]] = (),
              size_frontier: Optional[int] = None,
              weight: float = 0.5,
              max_explored: Optional[int] = None,
              ) -> Tuple[StateGraph, Optional[ExplorationResult],
                         Optional[ExplorationStats]]:
    """Apply one reduction strategy; returns (chosen SG, exploration, stats).

    ``size_frontier`` and ``max_explored`` default per strategy from
    :data:`repro.pipeline.STRATEGY_DEFAULTS` (4/10k for the searches,
    6/20k for ``full``) when left as ``None``.
    """
    config = FlowConfig.create(
        strategy=strategy, keep_conc=keep_conc, size_frontier=size_frontier,
        weight=weight, max_explored=max_explored)
    return run_reduction(config, initial_sg)


def _flow_result(result: PipelineResult, name: str,
                 spec: Optional[PartialSpec],
                 expanded: Optional[STG]) -> FlowResult:
    return FlowResult(
        spec=spec,
        expanded=expanded,
        initial_sg=result.initial_sg(),
        exploration=result.exploration(),
        report=_implementation_report(result, name),
        reduction_stats=result.reduction_stats(),
        pipeline=result,
    )


def run_flow_stg(stg: Optional[STG],
                 strategy: str = "best-first",
                 keep_conc: Iterable[Tuple[str, str]] = (),
                 size_frontier: Optional[int] = None,
                 weight: float = 0.5,
                 max_explored: Optional[int] = None,
                 delays: DelayModel = TABLE1_DELAYS,
                 max_csc_signals: int = 4,
                 library: Library = DEFAULT_LIBRARY,
                 resynthesise: bool = False,
                 name: Optional[str] = None,
                 spec: Optional[PartialSpec] = None,
                 initial_sg: Optional[StateGraph] = None,
                 verify: bool = False,
                 verify_model: str = "atomic",
                 verify_max_states: Optional[int] = None,
                 sg_max_states: Optional[int] = None,
                 sg_max_arcs: Optional[int] = None,
                 sg_engine: str = "auto",
                 check_engine: str = "auto",
                 store: Optional[ArtifactStore] = None) -> FlowResult:
    """The Fig. 4 pipeline from a complete STG (stages 2-8).

    Deprecated keyword front end over :func:`repro.pipeline.run_pipeline`;
    one call evaluates one design point (``strategy`` x ``weight`` x
    ``keep_conc``).  Passing a pre-generated ``initial_sg`` skips SG
    generation (sweep workers cache the SG per spec).
    ``sg_max_states``/``sg_max_arcs`` budget the generation stage
    (:class:`repro.explore.ExplorationBudget` knobs); ``sg_engine``
    selects its marking-exploration core.  ``check_engine="symbolic"``
    runs a symbolic coding pre-flight on the STG before any state is
    enumerated -- the :class:`~repro.symbolic.csc.CodingReport` lands on
    :attr:`FlowResult.coding` -- and then proceeds with the explicit flow
    (synthesis itself needs the materialized state graph).
    """
    if initial_sg is None and stg is None:
        raise ValueError("run_flow_stg needs an STG or a pre-generated SG")
    config = FlowConfig.create(
        strategy=strategy, weight=weight, size_frontier=size_frontier,
        keep_conc=keep_conc, max_explored=max_explored, delays=delays,
        max_csc_signals=max_csc_signals, library=library,
        resynthesise=resynthesise, verify=verify, verify_model=verify_model,
        verify_max_states=verify_max_states, sg_max_states=sg_max_states,
        sg_max_arcs=sg_max_arcs, sg_engine=sg_engine,
        check_engine=check_engine)
    label = name or (stg.name if stg is not None else initial_sg.name)
    coding = None
    if config.check_engine == "symbolic" and stg is not None:
        from .sg.properties import check_coding
        coding = check_coding(stg, engine="symbolic", name=label)
    result = run_pipeline(config, stg=stg, initial_sg=initial_sg,
                          name=label, store=store)
    flow = _flow_result(result, label, spec, stg)
    flow.coding = coding
    return flow


def run_flow(spec: PartialSpec,
             phases: int = 4,
             extra_constraints: Sequence[InterfaceConstraint] = (),
             keep_conc: Iterable[Tuple[str, str]] = (),
             reduce: bool = True,
             full: bool = False,
             strategy: str = "best-first",
             size_frontier: Optional[int] = None,
             weight: float = 0.5,
             max_explored: Optional[int] = None,
             delays: DelayModel = TABLE1_DELAYS,
             max_csc_signals: int = 4,
             library: Library = DEFAULT_LIBRARY,
             resynthesise: bool = False,
             name: Optional[str] = None,
             verify: bool = False,
             verify_model: str = "atomic",
             verify_max_states: Optional[int] = None,
             store: Optional[ArtifactStore] = None) -> FlowResult:
    """The complete Fig. 4 pipeline from a partial specification.

    ``reduce=False`` keeps maximal concurrency (the "Max. concurrency" rows);
    ``full=True`` drives concurrency as low as validity allows (the "Full
    reduction" row).  Otherwise ``strategy`` selects the Fig. 9 beam or the
    best-first search, run with the given frontier size and weight ``W``.
    """
    if not reduce:
        strategy = "none"
    elif full:
        strategy = "full"
    config = FlowConfig.create(
        strategy=strategy, weight=weight, size_frontier=size_frontier,
        keep_conc=keep_conc, max_explored=max_explored, delays=delays,
        max_csc_signals=max_csc_signals, library=library,
        resynthesise=resynthesise, phases=phases, verify=verify,
        verify_model=verify_model, verify_max_states=verify_max_states)
    label = name or spec.name
    result = run_pipeline(config, spec=spec,
                          extra_constraints=extra_constraints,
                          name=label, store=store)
    return _flow_result(result, label, spec, result.expanded_stg())


def implement_stg(stg: STG, name: Optional[str] = None,
                  delays: DelayModel = TABLE1_DELAYS,
                  **kwargs) -> ImplementationReport:
    """Convenience: generate the SG of a complete STG and implement it."""
    from .sg.generator import generate_sg
    sg = generate_sg(stg)
    return implement(sg, name=name or stg.name, delays=delays, **kwargs)
