"""Complete State Coding: conflict analysis and state-signal insertion."""
