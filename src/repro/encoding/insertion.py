"""State-signal insertion for CSC resolution.

When concurrency reduction leaves CSC conflicts, an internal state signal is
inserted by *threading* it through the behaviour: for a chosen pair of
non-input trigger events ``x`` and ``y`` the executions are constrained to
the cyclic order::

    x ; csc+ ; y ; csc- ; x ; ...

``csc+`` fires after ``x`` (concurrently with everything else), ``y`` waits
for ``csc+``, and the next ``x`` waits for ``csc-``.  This is the SG-level
analogue of threading an interface constraint through the STG and has the
properties Definition 5.1 demands by construction:

* only ``x`` and ``y`` are ever delayed, and both are non-input events, so
  the I/O interface is untouched;
* output persistency is preserved: a delayed event is simply not enabled in
  the new SG until its csc phase is reached -- it is never enabled and then
  disabled (assuming the input SG is persistent and the triggers alternate);
* consistency holds by construction (the csc value is part of the state).

Candidates that deadlock (the triggers do not alternate compatibly with the
rest of the behaviour) or lose events are rejected; among the feasible ones
the search keeps the candidate with the fewest remaining conflicts, then the
fewest states.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..petri.stg import Direction, SignalEvent, SignalKind
from ..sg.graph import State, StateGraph
from ..sg.properties import csc_conflicts, persistency_violations
from .csc import conflict_count


class InsertionError(Exception):
    """Raised when no insertion candidate resolves the conflicts."""


@dataclass(frozen=True)
class InsertionChoice:
    """A committed insertion: triggers, style and the quality of the result."""

    signal: str
    rise_trigger: str   # x: csc+ fires right after this event
    fall_trigger: str   # y: csc- fires right after this event
    initial_value: int
    conflicts_after: int
    states_after: int
    style: str = "threading"


def insert_state_signal(sg: StateGraph, rise_trigger: str, fall_trigger: str,
                        signal: str, initial_value: int = 0) -> Optional[StateGraph]:
    """Thread ``signal`` through the cycle ``x ; s+ ; y ; s- ; x``.

    Returns None when the candidate is infeasible: a trigger is an input
    event, the threading deadlocks, or some event disappears.
    """
    if rise_trigger == fall_trigger:
        return None
    if rise_trigger not in sg.events or fall_trigger not in sg.events:
        return None
    if sg.is_input_label(rise_trigger) or sg.is_input_label(fall_trigger):
        return None
    if initial_value not in (0, 1):
        raise ValueError("initial_value must be 0 or 1")

    new = _prepare_extended(sg, signal)
    rise_label, fall_label = f"{signal}+", f"{signal}-"

    # Extended states: (original state, csc value, pending csc transition).
    codes = sg.codes
    succ = sg._succ
    initial = (sg.initial, initial_value, None)
    new.add_state(initial, codes[sg.initial] + (initial_value,))
    new.initial = initial
    queue = deque([initial])
    seen: Set[Tuple] = {initial}
    limit = 8 * max(len(sg), 1)

    while queue:
        state = queue.popleft()
        orig, value, pending = state

        def push(target: Tuple, label: str) -> None:
            if target not in seen:
                seen.add(target)
                new.add_state(target, codes[target[0]] + (target[1],))
                queue.append(target)
            new.add_arc(state, label, target)

        if pending == "+":
            push((orig, 1, None), rise_label)
        elif pending == "-":
            push((orig, 0, None), fall_label)

        for label, target in succ[orig].items():
            if label == rise_trigger:
                # x waits for the previous csc handshake to complete.
                if value != 0 or pending is not None:
                    continue
                push((target, 0, "+"), label)
            elif label == fall_trigger:
                # y waits for csc+.
                if value != 1 or pending is not None:
                    continue
                push((target, 1, "-"), label)
            else:
                push((target, value, pending), label)
        if len(seen) > limit:
            return None

    if not _feasible(sg, new, rise_label, fall_label):
        return None
    return new


def insert_state_signal_sequencing(sg: StateGraph, rise_after: str,
                                   fall_after: str, signal: str,
                                   initial_value: int = 0) -> Optional[StateGraph]:
    """Serial insertion: the csc transition fires right after its trigger and
    every *non-input* event waits for it.

    Inputs are never delayed (they may race ahead of the pending csc
    transition), so the I/O interface is preserved; the candidate is
    infeasible when a trigger overtakes the pending transition (the signal
    would turn inconsistent).  This style changes the encoding sharply at
    the trigger, which resolves conflicts the threading style smears over.
    """
    if rise_after == fall_after:
        return None
    if rise_after not in sg.events or fall_after not in sg.events:
        return None
    if initial_value not in (0, 1):
        raise ValueError("initial_value must be 0 or 1")

    new = _prepare_extended(sg, signal)
    rise_label, fall_label = f"{signal}+", f"{signal}-"
    codes = sg.codes
    succ = sg._succ
    is_input = {label: sg.is_input_label(label) for label in sg.events}
    initial = (sg.initial, initial_value, None)
    new.add_state(initial, codes[sg.initial] + (initial_value,))
    new.initial = initial
    queue = deque([initial])
    seen: Set[Tuple] = {initial}
    limit = 8 * max(len(sg), 1)

    while queue:
        state = queue.popleft()
        orig, value, pending = state

        def push(target: Tuple, label: str) -> None:
            if target not in seen:
                seen.add(target)
                new.add_state(target, codes[target[0]] + (target[1],))
                queue.append(target)
            new.add_arc(state, label, target)

        if pending == "+":
            push((orig, 1, None), rise_label)
        elif pending == "-":
            push((orig, 0, None), fall_label)

        for label, target in succ[orig].items():
            if pending is not None:
                if not is_input[label]:
                    continue  # non-inputs wait for the csc transition
                if label in (rise_after, fall_after):
                    return None  # an input trigger overtook the csc event
                push((target, value, pending), label)
                continue
            if label == rise_after:
                if value != 0:
                    return None  # triggers do not alternate: inconsistent
                push((target, 0, "+"), label)
            elif label == fall_after:
                if value != 1:
                    return None
                push((target, 1, "-"), label)
            else:
                push((target, value, pending), label)
        if len(seen) > limit:
            return None

    if not _feasible(sg, new, rise_label, fall_label):
        return None
    return new


def _prepare_extended(sg: StateGraph, signal: str) -> StateGraph:
    """Fresh SG sharing the original's signals plus the new internal one."""
    new = StateGraph(f"{sg.name}+{signal}")
    for name in sg.signals:
        new.declare_signal(name, sg.kinds[name])
    new.declare_signal(signal, SignalKind.INTERNAL)
    for label, event in sg.events.items():
        new.declare_event(label, event)
    new.declare_event(f"{signal}+", SignalEvent(signal, Direction.RISE))
    new.declare_event(f"{signal}-", SignalEvent(signal, Direction.FALL))
    return new


def _feasible(sg: StateGraph, new: StateGraph, rise_label: str,
              fall_label: str) -> bool:
    """No new deadlocks, no lost events, both csc transitions fire."""
    original_succ = sg._succ
    reached_labels: Set[str] = set()
    for state, out in new._succ.items():
        if not out and original_succ[state[0]]:
            return False
        reached_labels.update(out)
    original_labels = {label for out in original_succ.values() for label in out}
    if not original_labels <= reached_labels:
        return False
    return rise_label in reached_labels and fall_label in reached_labels


def enumerate_insertions(sg: StateGraph, signal: str,
                         require_improvement: bool = True,
                         ) -> List[Tuple[InsertionChoice, StateGraph]]:
    """All feasible single-signal insertions over both styles, best first.

    Candidates must not introduce persistency violations (a safety net on
    top of the by-construction argument); with ``require_improvement`` they
    must also strictly reduce the CSC conflict count.
    """
    baseline_conflicts = conflict_count(sg)
    if baseline_conflicts == 0:
        return []
    live_labels = {label for out in sg._succ.values() for label in out}
    live = [label for label in sorted(sg.events) if label in live_labels]
    non_input = [label for label in live if not sg.is_input_label(label)]
    baseline_violations = {(v.disabled, v.by) for v in persistency_violations(sg)}
    found: List[Tuple[Tuple, InsertionChoice, StateGraph]] = []

    def consider(style: str, rise: str, fall: str, value: int,
                 candidate: Optional[StateGraph]) -> None:
        if candidate is None:
            return
        new_violations = {(v.disabled, v.by)
                          for v in persistency_violations(candidate)}
        if new_violations - baseline_violations:
            return
        conflicts = conflict_count(candidate)
        if require_improvement and conflicts >= baseline_conflicts:
            return
        key = (conflicts, len(candidate), style, rise, fall, value)
        found.append((key, InsertionChoice(signal, rise, fall, value,
                                           conflicts, len(candidate), style),
                      candidate))

    for rise in non_input:
        for fall in non_input:
            if rise == fall:
                continue
            for value in (0, 1):
                consider("threading", rise, fall, value,
                         insert_state_signal(sg, rise, fall, signal, value))
    for rise in live:
        for fall in live:
            if rise == fall:
                continue
            for value in (0, 1):
                consider("sequencing", rise, fall, value,
                         insert_state_signal_sequencing(sg, rise, fall,
                                                        signal, value))
    found.sort(key=lambda item: item[0])
    return [(choice, candidate) for _, choice, candidate in found]


def find_insertion(sg: StateGraph, signal: str,
                   ) -> Optional[Tuple[InsertionChoice, StateGraph]]:
    """Best single-signal insertion, or None if nothing helps."""
    candidates = enumerate_insertions(sg, signal)
    return candidates[0] if candidates else None


def excitation_nonempty(sg: StateGraph, label: str) -> bool:
    return any(label in out for out in sg._succ.values())


@dataclass
class ResolutionResult:
    """Outcome of the greedy CSC resolution loop."""

    sg: StateGraph
    insertions: List[InsertionChoice]
    resolved: bool

    @property
    def signal_count(self) -> int:
        return len(self.insertions)


def resolve_csc(sg: StateGraph, max_signals: int = 4, prefix: str = "csc",
                beam_width: int = 5) -> ResolutionResult:
    """Insert state signals until CSC holds, by bounded best-first search.

    Greedy insertion can paint itself into a corner (the locally best first
    signal may leave conflicts no second signal can separate), so a small
    beam of the most promising partial solutions is kept per level.  The
    first fully resolved solution with the fewest signals wins; if none
    resolves within ``max_signals``, the best partial result is returned.
    """
    if conflict_count(sg) == 0:
        return ResolutionResult(sg=sg, insertions=[], resolved=True)

    Partial = Tuple[StateGraph, List[InsertionChoice]]
    frontier: List[Partial] = [(sg, [])]
    best_partial: Tuple[int, int, StateGraph, List[InsertionChoice]] = (
        conflict_count(sg), 0, sg, [])

    for index in range(max_signals):
        candidates: List[Tuple[Tuple, StateGraph, List[InsertionChoice]]] = []
        for current, insertions in frontier:
            for choice, candidate in enumerate_insertions(
                    current, f"{prefix}{index}")[: 2 * beam_width]:
                trail = insertions + [choice]
                if choice.conflicts_after == 0:
                    return ResolutionResult(sg=candidate, insertions=trail,
                                            resolved=True)
                key = (choice.conflicts_after, len(candidate))
                candidates.append((key, candidate, trail))
        if not candidates:
            break
        candidates.sort(key=lambda item: item[0])
        frontier = [(candidate, trail)
                    for _, candidate, trail in candidates[:beam_width]]
        head = candidates[0]
        if (head[0][0], len(head[2])) < (best_partial[0], best_partial[1]):
            best_partial = (head[0][0], len(head[2]), head[1], head[2])

    _, __, partial_sg, partial_trail = best_partial
    return ResolutionResult(sg=partial_sg, insertions=partial_trail,
                            resolved=conflict_count(partial_sg) == 0)
