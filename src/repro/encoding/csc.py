"""CSC conflict analysis.

Complete State Coding is the paper's second implementability condition: two
states with equal binary codes must enable the same non-input events.
Beyond the raw conflict list (:func:`repro.sg.properties.csc_conflicts`)
this module provides the aggregates used by cost functions, reports and the
insertion search: conflict cores, per-signal attribution, and the partition
of states an inserted signal must distinguish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..sg.graph import State, StateGraph
from ..sg.properties import CSCConflict, csc_conflicts


@dataclass(frozen=True)
class ConflictCore:
    """A set of same-code states whose excitations disagree pairwise."""

    code: Tuple[int, ...]
    states: FrozenSet[State]


def conflict_cores(sg: StateGraph) -> List[ConflictCore]:
    """Group CSC conflicts by shared binary code."""
    by_code: Dict[Tuple[int, ...], Set[State]] = {}
    for conflict in csc_conflicts(sg):
        by_code.setdefault(conflict.code, set()).update(
            (conflict.state_a, conflict.state_b))
    return [ConflictCore(code, frozenset(states))
            for code, states in sorted(by_code.items())]


def conflict_count(sg: StateGraph) -> int:
    """Number of CSC conflict pairs (the quantity the cost function tracks)."""
    return len(csc_conflicts(sg))


def signals_needing_resolution(sg: StateGraph) -> Set[str]:
    """Non-input signals whose next-state function is ill-defined."""
    from ..logic.functions import extract_all_functions

    return {signal for signal, function in extract_all_functions(sg).items()
            if function.has_csc_conflict}


def estimate_csc_signals_needed(sg: StateGraph) -> int:
    """Lower bound on the number of state signals needed.

    Each inserted signal can binary-partition every conflict core, so a core
    with ``k`` mutually conflicting states needs at least ``ceil(log2 k)``
    signals; the bound over all cores is their maximum.
    """
    worst = 0
    for core in conflict_cores(sg):
        size = len(core.states)
        bits = (size - 1).bit_length()
        worst = max(worst, bits)
    return worst


def conflicting_state_pairs(sg: StateGraph) -> List[Tuple[State, State]]:
    """The raw conflict pairs, ordered deterministically for search code."""
    pairs = [(c.state_a, c.state_b) for c in csc_conflicts(sg)]
    return sorted(pairs, key=lambda p: (str(p[0]), str(p[1])))


def _input_reachable(sg: StateGraph, source: State, target: State) -> bool:
    """True when ``target`` is reachable from ``source`` via input events only."""
    frontier = [source]
    seen = {source}
    while frontier:
        state = frontier.pop()
        if state == target:
            return True
        for label, nxt in sg.successors(state).items():
            if sg.is_input_label(label) and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def irresolvable_conflicts(sg: StateGraph) -> List[CSCConflict]:
    """Conflict pairs no internal state signal can separate.

    If one conflicting state reaches the other through *input events only*,
    the environment can traverse the gap faster than any circuit-controlled
    signal can toggle; since inputs must never be delayed (Definition 5.1),
    insertion cannot distinguish the two states -- only an interface change
    or a concurrency reduction that removes one of them can.  Fig. 1 of the
    paper is exactly such a case (``Req-; Req+`` between the two 11 states).
    """
    hopeless = []
    for conflict in csc_conflicts(sg):
        if (_input_reachable(sg, conflict.state_a, conflict.state_b)
                or _input_reachable(sg, conflict.state_b, conflict.state_a)):
            hopeless.append(conflict)
    return hopeless
