"""Forward reduction -- the elementary operation of the paper (Section 6).

``FwdRed(a, b)`` reduces the concurrency of event ``a`` with respect to
event ``b``: in every execution where both are enabled, ``a`` now waits for
``b``.  Following Fig. 7::

    ER_red(a) = ER(a) - (ER(b)  U  back_reach(ER(a) /\\ ER(b)))

where the backward reachability stays inside ER(a) (leaving the region would
mean ``a`` has fired).  Arcs labelled ``a`` leaving the truncated states are
removed, unreachable states are pruned, and the result is validated per
Definition 5.1.  At the STG level this corresponds to adding a causal place
from ``b`` to ``a``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Set, Tuple

from typing import Dict

from .. import engine
from ..petri.stg import SignalKind
from ..sg.graph import State, StateGraph, StateGraphError
from ..sg.regions import excitation_region
from .validity import ValidityReport, validate_removal


class ReductionError(Exception):
    """Raised on misuse of the reduction operation (not on invalid results)."""


@dataclass
class ReductionResult:
    """Outcome of a forward reduction attempt."""

    sg: Optional[StateGraph]
    valid: bool
    reason: str = ""
    removed_arcs: int = 0
    removed_states: int = 0

    def __bool__(self) -> bool:
        return self.valid


#: (result, candidate-graph version) keyed by (parent signature, delayed,
#: before).  The sweep re-explores the same configurations under different
#: knobs, and the result of a reduction is a pure function of the parent
#: graph.  The stored version detects callers mutating a shared candidate.
_REDUCTION_MEMO: Dict[tuple, Tuple["ReductionResult", int]] = (
    engine.register_cache({}, name="reduction-results"))


def forward_reduction(sg: StateGraph, delayed: str, before: str,
                      validate: bool = True) -> ReductionResult:
    """Apply ``FwdRed(delayed, before)``: make ``delayed`` wait for ``before``.

    ``delayed`` must be a non-input event (inputs cannot be delayed by the
    circuit, condition 2a of Definition 5.1).  Returns an invalid result --
    never raises -- when the events are not concurrent or the reduction
    violates validity, so the exploration loop can just skip it.
    """
    if validate and engine.packed_memo_enabled():
        key = (sg.signature(), delayed, before)
        cached = _REDUCTION_MEMO.get(key)
        if cached is not None:
            result, version = cached
            # A caller may have mutated the shared candidate graph after
            # receiving it; its version counter exposes that, in which case
            # the entry is stale and the reduction is rebuilt fresh.
            if result.sg is None or result.sg._version == version:
                return result
        result = _forward_reduction_uncached(sg, delayed, before, True)
        # Valid entries keep their candidate SG alive, so the cap is much
        # tighter than the pure-integer memos.
        if len(_REDUCTION_MEMO) > 20_000:
            _REDUCTION_MEMO.clear()
        _REDUCTION_MEMO[key] = (result,
                                result.sg._version if result.sg else -1)
        return result
    return _forward_reduction_uncached(sg, delayed, before, validate)


def _forward_reduction_uncached(sg: StateGraph, delayed: str, before: str,
                                validate: bool) -> ReductionResult:
    if delayed not in sg.events or before not in sg.events:
        raise ReductionError(f"unknown event: {delayed!r} or {before!r}")
    if delayed == before:
        raise ReductionError("cannot reduce an event against itself")
    if sg.is_input_label(delayed):
        return ReductionResult(None, False,
                               f"{delayed} is an input event and cannot be delayed")

    er_delayed = excitation_region(sg, delayed)
    er_before = excitation_region(sg, before)
    intersection = er_delayed & er_before
    if not intersection:
        return ReductionResult(None, False,
                               f"{delayed} and {before} are not concurrent")

    truncated = sg.backward_reachable(intersection, within=er_delayed)
    truncated |= intersection
    if truncated >= er_delayed:
        return ReductionResult(None, False,
                               f"reduction would remove every occurrence of {delayed}")

    if validate:
        report, reachable = validate_removal(sg, delayed, truncated)
        if not report.valid:
            return ReductionResult(None, False, "; ".join(report.reasons),
                                   removed_arcs=len(truncated),
                                   removed_states=len(sg) - len(reachable))
    else:
        reachable = None

    reduced = sg.copy_without_arcs(((state, delayed) for state in truncated),
                                   name=sg.name, reachable=reachable)
    return ReductionResult(reduced, True, "",
                           removed_arcs=len(truncated),
                           removed_states=len(sg) - len(reduced))


def reducible_pairs(sg: StateGraph,
                    keep_conc: FrozenSet[FrozenSet[str]] = frozenset()) -> Set[Tuple[str, str]]:
    """All ordered pairs ``(before, delayed)`` eligible for FwdRed.

    ``delayed`` ranges over non-input events concurrent with ``before``;
    pairs whose unordered form appears in ``keep_conc`` are excluded (they
    are the designer's performance-critical concurrency, Fig. 9).
    """
    from ..sg.regions import concurrent_pairs

    pairs: Set[Tuple[str, str]] = set()
    for label_a, label_b in concurrent_pairs(sg):
        if frozenset((label_a, label_b)) in keep_conc:
            continue
        for before, delayed in ((label_a, label_b), (label_b, label_a)):
            if not sg.is_input_label(delayed):
                pairs.add((before, delayed))
    return pairs
