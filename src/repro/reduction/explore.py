"""Frontier-based exploration of concurrency reductions (Fig. 9).

Starting from the maximally concurrent SG, each level applies every eligible
forward reduction to every SG on the frontier; the ``size_frontier`` best
candidates (by the heuristic cost) survive to the next level.  Because every
step strictly reduces concurrency, the search terminates when no reduction
applies.  The best SG over *everything explored* (including the input) is
returned -- reduction is an optimization, not an obligation.

Accounting is strategy-independent: every strategy fills in the same
:class:`ExplorationStats`, where ``explored`` always means the number of
*distinct* configurations whose cost was evaluated (the input included) and
``expanded`` the subset whose successors were generated.  The
``max_explored`` budget is an :class:`~repro.explore.ExplorationBudget`
state cap shared with the other frontier engines; it caps ``explored``
via the meter's non-raising pre-check (the search must flip ``capped``
*before* generating a candidate past the budget, never drop one
silently), so a single wide level cannot blow past it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..explore import BudgetMeter, ExplorationBudget
from ..hse.constraints import normalise_keep_conc
from ..sg.graph import StateGraph
from ..sg.regions import are_concurrent
from .cost import CostFunction
from .fwdred import forward_reduction, reducible_pairs


def _keeps_concurrency(sg: StateGraph,
                       preserved: FrozenSet[FrozenSet[str]]) -> bool:
    """True when every Keep_Conc pair is still concurrent in ``sg``.

    The paper's Fig. 9 only avoids reducing the pairs directly, but a
    reduction of *another* pair can serialize a protected one as a side
    effect; checking after the fact keeps the guarantee the designer asked
    for ("crucial for overall system performance").
    """
    for pair in preserved:
        label_a, label_b = sorted(pair)
        if not are_concurrent(sg, label_a, label_b):
            return False
    return True


@dataclass
class ExplorationStep:
    """One new best-so-far configuration in the search history."""

    level: int
    before: str
    delayed: str
    cost: float
    states: int


@dataclass(frozen=True)
class ExplorationStats:
    """Strategy-independent accounting of one exploration run.

    ``explored`` counts the *distinct* configurations whose cost was
    evaluated, the input configuration included; ``expanded`` counts the
    subset whose successors were generated.  The numbers mean exactly the
    same thing for ``beam``, ``best-first`` and ``full``, so sweep reports
    are comparable across strategies.  ``levels`` is beam levels for the
    level-by-level strategies and expansion steps for best-first;
    ``capped`` records whether the ``max_explored`` budget stopped the
    search before it converged.
    """

    strategy: str
    explored: int
    expanded: int
    levels: int
    capped: bool


@dataclass
class ExplorationResult:
    """Outcome of the Fig. 9 loop."""

    best: StateGraph
    best_cost: float
    initial_cost: float
    explored_count: int
    levels: int
    history: List[ExplorationStep] = field(default_factory=list)
    stats: Optional[ExplorationStats] = None

    @property
    def improved(self) -> bool:
        return self.best_cost < self.initial_cost


def _signature(sg: StateGraph) -> tuple:
    return sg.signature()


def _explored_meter(max_explored: Optional[int]) -> BudgetMeter:
    """The shared budget meter capping distinct cost evaluations."""
    return ExplorationBudget(max_states=max_explored).meter()


def reduce_concurrency(sg: StateGraph,
                       keep_conc: Iterable[Tuple[str, str]] = (),
                       size_frontier: int = 4,
                       weight: float = 0.5,
                       cost_function: Optional[CostFunction] = None,
                       max_levels: Optional[int] = None,
                       max_explored: int = 10_000,
                       strategy: str = "best-first",
                       patience: int = 150) -> ExplorationResult:
    """Search over valid forward reductions.

    ``keep_conc`` lists event pairs whose concurrency must be preserved;
    elements may be labels, base events or bare signal names (see
    :func:`repro.hse.constraints.normalise_keep_conc`).  ``weight`` is the
    paper's ``W``: 0 biases towards CSC resolution, 1 towards logic size.

    ``strategy`` selects between the paper's level-by-level beam
    (``"beam"``, Fig. 9) and a best-first variant (``"best-first"``, the
    default) that expands the globally cheapest configuration next.  The
    cost landscape of reshuffling is deceptive -- the best final
    interleaving is often reached through intermediate configurations that
    look expensive -- and best-first recovers from that where a narrow beam
    cannot.  ``patience`` bounds the number of consecutive non-improving
    expansions in best-first mode.
    """
    if strategy == "best-first":
        return _best_first(sg, keep_conc, weight, cost_function,
                           max_explored, patience)
    if strategy != "beam":
        raise ValueError(f"unknown strategy {strategy!r}")
    if size_frontier < 1:
        raise ValueError("size_frontier must be at least 1")
    cost = cost_function or CostFunction(weight=weight)
    preserved: FrozenSet[FrozenSet[str]] = frozenset(normalise_keep_conc(sg, keep_conc))

    initial_cost = cost(sg)
    # Only *expanded* configurations are closed; a candidate pruned from one
    # level's frontier may be regenerated along a better path later.  The
    # ``seen`` set exists purely for accounting: ``max_explored`` budgets
    # distinct cost evaluations, not generation events.
    seen: Set[tuple] = {_signature(sg)}
    meter = _explored_meter(max_explored)
    expanded: Set[tuple] = set()
    capped = False
    best, best_cost = sg, initial_cost
    frontier: List[StateGraph] = [sg]
    history: List[ExplorationStep] = []
    level = 0

    while frontier and not capped and (max_levels is None or level < max_levels):
        level += 1
        candidates: Dict[tuple, Tuple[float, StateGraph, str, str]] = {}
        for current in frontier:
            signature = _signature(current)
            if signature in expanded:
                continue
            expanded.add(signature)
            for before, delayed in sorted(reducible_pairs(current, preserved)):
                if meter.states_exhausted(len(seen)):
                    capped = True
                    break
                result = forward_reduction(current, delayed, before)
                if not result.valid:
                    continue
                if preserved and not _keeps_concurrency(result.sg, preserved):
                    continue
                child_signature = _signature(result.sg)
                seen.add(child_signature)
                if child_signature in expanded or child_signature in candidates:
                    continue
                candidates[child_signature] = (cost(result.sg), result.sg,
                                               before, delayed)
            if capped:
                break
        if not candidates:
            break
        survivors = sorted(candidates.values(), key=lambda item: item[0])
        survivors = survivors[:size_frontier]
        for value, candidate, before, delayed in survivors:
            if value < best_cost:
                best, best_cost = candidate, value
                history.append(ExplorationStep(level, before, delayed, value,
                                               len(candidate)))
        frontier = [candidate for _, candidate, _, _ in survivors]

    stats = ExplorationStats(strategy="beam", explored=len(seen),
                             expanded=len(expanded), levels=level,
                             capped=capped)
    return ExplorationResult(best=best, best_cost=best_cost,
                             initial_cost=initial_cost,
                             explored_count=stats.explored,
                             levels=level, history=history, stats=stats)


def _best_first(sg: StateGraph,
                keep_conc: Iterable[Tuple[str, str]],
                weight: float,
                cost_function: Optional[CostFunction],
                max_explored: int,
                patience: int) -> ExplorationResult:
    """Priority-queue exploration: always expand the cheapest known SG."""
    import heapq

    cost = cost_function or CostFunction(weight=weight)
    preserved: FrozenSet[FrozenSet[str]] = frozenset(normalise_keep_conc(sg, keep_conc))
    initial_cost = cost(sg)
    best, best_cost = sg, initial_cost
    counter = 0
    heap: List[Tuple[float, int, StateGraph]] = [(initial_cost, counter, sg)]
    seen: Set[tuple] = {_signature(sg)}
    meter = _explored_meter(max_explored)
    expanded: Set[tuple] = set()
    capped = False
    history: List[ExplorationStep] = []
    stale = 0

    while heap and not capped and stale < patience:
        value, _, current = heapq.heappop(heap)
        signature = _signature(current)
        if signature in expanded:
            continue
        expanded.add(signature)
        improved = False
        for before, delayed in sorted(reducible_pairs(current, preserved)):
            if meter.states_exhausted(len(seen)):
                capped = True
                break
            result = forward_reduction(current, delayed, before)
            if not result.valid:
                continue
            if preserved and not _keeps_concurrency(result.sg, preserved):
                continue
            child_signature = _signature(result.sg)
            if child_signature in expanded:
                continue
            seen.add(child_signature)
            child_cost = cost(result.sg)
            counter += 1
            heapq.heappush(heap, (child_cost, counter, result.sg))
            if child_cost < best_cost:
                best, best_cost = result.sg, child_cost
                improved = True
                history.append(ExplorationStep(len(expanded), before, delayed,
                                               child_cost, len(result.sg)))
        stale = 0 if improved else stale + 1

    stats = ExplorationStats(strategy="best-first", explored=len(seen),
                             expanded=len(expanded), levels=len(expanded),
                             capped=capped)
    return ExplorationResult(best=best, best_cost=best_cost,
                             initial_cost=initial_cost,
                             explored_count=stats.explored,
                             levels=len(expanded), history=history,
                             stats=stats)


def full_reduction_with_stats(sg: StateGraph,
                              keep_conc: Iterable[Tuple[str, str]] = (),
                              size_frontier: int = 6,
                              weight: float = 0.5,
                              cost_function: Optional[CostFunction] = None,
                              max_explored: int = 20_000,
                              ) -> Tuple[StateGraph, ExplorationStats]:
    """:func:`full_reduction` plus the unified exploration accounting."""
    cost = cost_function or CostFunction(weight=weight)
    preserved = frozenset(normalise_keep_conc(sg, keep_conc))
    seen: Set[tuple] = {_signature(sg)}
    meter = _explored_meter(max_explored)
    expanded: Set[tuple] = set()
    capped = False
    frontier: List[StateGraph] = [sg]
    best_terminal: Optional[StateGraph] = None
    best_terminal_cost = float("inf")
    levels = 0

    while frontier and not capped:
        levels += 1
        candidates: Dict[tuple, Tuple[float, StateGraph]] = {}
        for current in frontier:
            signature = _signature(current)
            if signature in expanded:
                continue
            expanded.add(signature)
            children = 0
            for before, delayed in sorted(reducible_pairs(current, preserved)):
                if meter.states_exhausted(len(seen)):
                    capped = True
                    break
                result = forward_reduction(current, delayed, before)
                if not result.valid:
                    continue
                if preserved and not _keeps_concurrency(result.sg, preserved):
                    continue
                children += 1
                child_signature = _signature(result.sg)
                seen.add(child_signature)
                if child_signature in expanded or child_signature in candidates:
                    continue
                candidates[child_signature] = (cost(result.sg), result.sg)
            if capped:
                break
            if children == 0:
                value = cost(current)
                if value < best_terminal_cost:
                    best_terminal, best_terminal_cost = current, value
        survivors = sorted(candidates.values(), key=lambda item: item[0])
        frontier = [candidate for _, candidate in survivors[:size_frontier]]

    stats = ExplorationStats(strategy="full", explored=len(seen),
                             expanded=len(expanded), levels=levels,
                             capped=capped)
    return (best_terminal if best_terminal is not None else sg), stats


def full_reduction(sg: StateGraph,
                   keep_conc: Iterable[Tuple[str, str]] = (),
                   size_frontier: int = 6,
                   weight: float = 0.5,
                   cost_function: Optional[CostFunction] = None,
                   max_explored: int = 20_000) -> StateGraph:
    """Reduce until no valid reduction remains; best terminal wins.

    Unlike :func:`reduce_concurrency` (which may stop anywhere), this drives
    concurrency as low as the validity rules allow (the "Full reduction" and
    ``x || y`` rows of Tables 1 and 2): a configuration only counts as a
    result when *no* valid reduction applies to it.  A beam of width
    ``size_frontier`` avoids the greedy trap where an early cheap-looking
    reduction forecloses the globally best interleaving.
    """
    best, _ = full_reduction_with_stats(
        sg, keep_conc=keep_conc, size_frontier=size_frontier, weight=weight,
        cost_function=cost_function, max_explored=max_explored)
    return best
