"""Concurrency reduction: FwdRed, validity, cost, beam-search exploration."""
