"""Validity of concurrency reductions (Section 5, Definition 5.1).

A reduced SG is valid when:

1. speed-independence is preserved (commutativity and determinism cannot
   break under arc removal, so only output persistency is checked);
2. the I/O interface is preserved (no input transition delayed; the initial
   state survives up to internal events);
3. no event disappears (every event with a non-empty ER keeps one);
4. no new deadlock states appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..sg.graph import State, StateGraph
from ..sg.properties import persistency_violations
from ..petri.stg import SignalKind


@dataclass(frozen=True)
class ValidityReport:
    """Outcome of the Definition 5.1 checks."""

    valid: bool
    reasons: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.valid


def _persistency_signature(sg: StateGraph) -> Set[Tuple[State, str, str]]:
    return {(v.state, v.disabled, v.by) for v in persistency_violations(sg)}


def check_validity(original: StateGraph, reduced: StateGraph) -> ValidityReport:
    """Run all Definition 5.1 checks of ``reduced`` against ``original``."""
    reasons: List[str] = []

    # (3) no events disappear
    original_events = {label for _, label, _ in original.arcs()}
    reduced_events = {label for _, label, _ in reduced.arcs()}
    lost = original_events - reduced_events
    if lost:
        reasons.append(f"events disappeared: {sorted(lost)}")

    # (4) no new deadlocks
    for state in reduced.states:
        if reduced.enabled(state):
            continue
        if state in original and original.enabled(state):
            reasons.append(f"new deadlock at state {state!r}")
            break

    # (2b) initial state preserved (arc removal keeps states, so the original
    # initial state must still exist and be the initial state).
    if reduced.initial != original.initial or reduced.initial not in reduced:
        reasons.append("initial state changed")

    # (2a) no input transition delayed: every state surviving reduction must
    # enable the same input events it enabled originally.
    for state in reduced.states:
        if state not in original:
            continue
        original_inputs = {label for label in original.enabled(state)
                           if original.is_input_label(label)}
        reduced_inputs = {label for label in reduced.enabled(state)
                          if reduced.is_input_label(label)}
        missing = original_inputs - reduced_inputs
        if missing:
            reasons.append(f"input events {sorted(missing)} delayed at {state!r}")
            break

    # (1) output persistency preserved: no *new* violations.
    new_violations = _persistency_signature(reduced) - _persistency_signature(original)
    if new_violations:
        state, disabled, by = next(iter(new_violations))
        reasons.append(
            f"persistency violated: {disabled} disabled by {by} at {state!r}")

    return ValidityReport(valid=not reasons, reasons=tuple(reasons))
