"""Validity of concurrency reductions (Section 5, Definition 5.1).

A reduced SG is valid when:

1. speed-independence is preserved (commutativity and determinism cannot
   break under arc removal, so only output persistency is checked);
2. the I/O interface is preserved (no input transition delayed; the initial
   state survives up to internal events);
3. no event disappears (every event with a non-empty ER keeps one);
4. no new deadlock states appear.

The exploration loop validates every candidate against the same parent, so
the per-graph aggregates (live label set, persistency signature) are
memoized per graph version in weak-keyed caches.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from ..sg.graph import State, StateGraph
from ..sg.properties import persistency_violations
from ..petri.stg import SignalKind


@dataclass(frozen=True)
class ValidityReport:
    """Outcome of the Definition 5.1 checks."""

    valid: bool
    reasons: Tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.valid


_PERSISTENCY_MEMO: "weakref.WeakKeyDictionary[StateGraph, Tuple[int, FrozenSet]]" = (
    weakref.WeakKeyDictionary())
_LIVE_LABEL_MEMO: "weakref.WeakKeyDictionary[StateGraph, Tuple[int, FrozenSet[str]]]" = (
    weakref.WeakKeyDictionary())


def _persistency_signature(sg: StateGraph) -> FrozenSet[Tuple[State, str, str]]:
    cached = _PERSISTENCY_MEMO.get(sg)
    if cached is not None and cached[0] == sg._version:
        return cached[1]
    signature = frozenset((v.state, v.disabled, v.by)
                          for v in persistency_violations(sg))
    _PERSISTENCY_MEMO[sg] = (sg._version, signature)
    return signature


def _live_labels(sg: StateGraph) -> FrozenSet[str]:
    """Labels appearing on at least one arc, memoized per graph version."""
    cached = _LIVE_LABEL_MEMO.get(sg)
    if cached is not None and cached[0] == sg._version:
        return cached[1]
    live = frozenset(label for out in sg._succ.values() for label in out)
    _LIVE_LABEL_MEMO[sg] = (sg._version, live)
    return live


def validate_removal(original: StateGraph, delayed: str,
                     truncated: Set[State]
                     ) -> Tuple[ValidityReport, Set[State]]:
    """Definition 5.1 checks for a forward reduction, before building it.

    The candidate is ``original`` minus the ``delayed``-labelled arcs of the
    ``truncated`` states, restricted to the reachable part.  Everything the
    checks need can be read off the parent, so invalid candidates (the
    majority, in a dense exploration) are rejected without materializing a
    graph.  Under that structure the full-graph sweeps collapse:

    * surviving states keep every arc except ``delayed`` leaving
      ``truncated``, so no input event can be delayed (``delayed`` is
      non-input by precondition), the initial state survives, and new
      deadlocks can only appear at truncated survivors;
    * every *new* persistency violation has ``delayed`` as the disabled
      event and one of the truncated survivors as the witness successor, so
      only the fan-in of those states needs scanning.

    Returns the report plus the post-removal reachable set, which a valid
    candidate's construction can reuse.
    """
    reasons: List[str] = []
    succ = original._succ
    initial = original.initial

    reachable: Set[State] = set()
    live: Set[str] = set()
    deadlock: Optional[State] = None
    if initial is not None:
        reachable.add(initial)
        stack = [initial]
        while stack:
            state = stack.pop()
            out = succ[state]
            if state in truncated:
                kept = False
                for label, target in out.items():
                    if label == delayed:
                        continue
                    kept = True
                    live.add(label)
                    if target not in reachable:
                        reachable.add(target)
                        stack.append(target)
                if not kept and out:
                    deadlock = state
            else:
                for label, target in out.items():
                    live.add(label)
                    if target not in reachable:
                        reachable.add(target)
                        stack.append(target)

    lost = _live_labels(original) - live
    if lost:
        reasons.append(f"events disappeared: {sorted(lost)}")
    if deadlock is not None:
        reasons.append(f"new deadlock at state {deadlock!r}")
    if initial is None or initial not in reachable:
        reasons.append("initial state changed")

    parent_sig = _persistency_signature(original)
    original_pred = original._pred
    done = False
    for t in truncated:
        if done or t not in reachable:
            continue
        for b, s in original_pred[t]:
            if s not in reachable or s in truncated:
                # A truncated source lost its own delayed arc, so delayed is
                # not enabled there; no new violation can be witnessed.
                continue
            if delayed not in succ[s]:
                continue
            if (s, delayed, b) in parent_sig:
                continue
            reasons.append(
                f"persistency violated: {delayed} disabled by {b} at {s!r}")
            done = True
            break

    return ValidityReport(valid=not reasons, reasons=tuple(reasons)), reachable


def check_validity(original: StateGraph, reduced: StateGraph) -> ValidityReport:
    """Run all Definition 5.1 checks of ``reduced`` against ``original``."""
    reasons: List[str] = []

    # (3) no events disappear
    lost = _live_labels(original) - _live_labels(reduced)
    if lost:
        reasons.append(f"events disappeared: {sorted(lost)}")

    original_succ = original._succ
    reduced_succ = reduced._succ

    # (4) no new deadlocks
    for state, out in reduced_succ.items():
        if out:
            continue
        if original_succ.get(state):
            reasons.append(f"new deadlock at state {state!r}")
            break

    # (2b) initial state preserved (arc removal keeps states, so the original
    # initial state must still exist and be the initial state).
    if reduced.initial != original.initial or reduced.initial not in reduced:
        reasons.append("initial state changed")

    # (2a) no input transition delayed: every state surviving reduction must
    # enable the same input events it enabled originally.
    is_input = original.is_input_label
    for state, out in reduced_succ.items():
        original_out = original_succ.get(state)
        if original_out is None or original_out.keys() == out.keys():
            continue
        missing = [label for label in original_out
                   if label not in out and is_input(label)]
        if missing:
            reasons.append(f"input events {sorted(missing)} delayed at {state!r}")
            break

    # (1) output persistency preserved: no *new* violations.
    new_violations = _persistency_signature(reduced) - _persistency_signature(original)
    if new_violations:
        state, disabled, by = next(iter(new_violations))
        reasons.append(
            f"persistency violated: {disabled} disabled by {by} at {state!r}")

    return ValidityReport(valid=not reasons, reasons=tuple(reasons))
