"""Cost function guiding the exploration (Section 7).

The paper combines the number of CSC conflicts with the estimated logic
complexity through a designer-chosen weight ``W`` in [0, 1]: ``W -> 0``
biases the search towards removing CSC conflicts, ``W -> 1`` towards
reducing the estimated logic.  Both terms are cheap on purpose -- exact
evaluation (state-signal insertion, decomposition, mapping) at every search
step would dominate the run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from .. import engine
from ..logic.complexity import estimate_logic_complexity
from ..sg.graph import StateGraph
from ..sg.properties import csc_conflicts


@dataclass(frozen=True)
class CostBreakdown:
    """The two terms of the heuristic cost and their combination."""

    logic_literals: int
    csc_conflict_pairs: int
    weight: float
    csc_scale: float
    state_count: int

    @property
    def value(self) -> float:
        logic_term = self.weight * self.logic_literals
        csc_term = (1.0 - self.weight) * self.csc_scale * self.csc_conflict_pairs
        # Tiny pressure towards smaller SGs breaks ties deterministically in
        # favour of less concurrency (larger don't-care sets downstream).
        return logic_term + csc_term + 1e-3 * self.state_count


#: Weight-independent cost terms keyed by (arc signature, exact_covers):
#: (literal estimate, CSC conflict pairs, state count).  Shared globally so
#: sweeps over ``W`` or the frontier width re-measure nothing.
_TERM_MEMO: Dict[Tuple[FrozenSet, bool], Tuple[int, int, int]] = (
    engine.register_cache({}, name="reduction-cost"))


def _measured_terms(sg: StateGraph, signature: FrozenSet,
                    exact_covers: bool) -> Tuple[int, int, int]:
    key = (signature, exact_covers)
    cached = _TERM_MEMO.get(key) if engine.packed_memo_enabled() else None
    if cached is None:
        estimate = estimate_logic_complexity(sg, exact=exact_covers)
        cached = (estimate.literals, len(csc_conflicts(sg)), len(sg))
        if engine.packed_memo_enabled():
            if len(_TERM_MEMO) > 100_000:
                _TERM_MEMO.clear()
            _TERM_MEMO[key] = cached
    return cached


class CostFunction:
    """Callable cost with memoisation keyed by the SG's arc signature.

    The signature comes from :meth:`StateGraph.signature`, which is itself
    cached on the graph, so repeated evaluations of the same configuration
    (beam survivors, heap re-pops) cost one dict lookup.
    """

    def __init__(self, weight: float = 0.5, csc_scale: float = 20.0,
                 exact_covers: bool = False) -> None:
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight W must lie in [0, 1]")
        self.weight = weight
        self.csc_scale = csc_scale
        self.exact_covers = exact_covers
        self._cache: Dict[frozenset, CostBreakdown] = {}

    def breakdown(self, sg: StateGraph) -> CostBreakdown:
        signature = sg.signature()
        cached = self._cache.get(signature)
        if cached is not None:
            return cached
        literals, conflict_pairs, states = _measured_terms(
            sg, signature, self.exact_covers)
        result = CostBreakdown(
            logic_literals=literals,
            csc_conflict_pairs=conflict_pairs,
            weight=self.weight,
            csc_scale=self.csc_scale,
            state_count=states,
        )
        self._cache[signature] = result
        return result

    def __call__(self, sg: StateGraph) -> float:
        return self.breakdown(sg).value
