"""Gate-level verification of synthesized circuits.

The fourth analysis engine of the flow (after generation, reduction and
synthesis): an event-driven packed-bitvector simulator for netlists
(:mod:`repro.verify.simulator`), an on-the-fly product conformance checker
(:mod:`repro.verify.conformance`) and deterministic, store-cacheable
verification certificates (:mod:`repro.verify.certificate`).
"""

from .certificate import (CERTIFICATE_VERSION, VERDICTS, VerificationReport,
                          netlist_payload, skipped_report, verification_key,
                          verify_netlist)
from .conformance import DEFAULT_MAX_STATES, check_conformance
from .simulator import (MODELS, CompiledCircuit, SimulationError, cell_table,
                        compile_atomic, compile_circuit, compile_structural)

__all__ = [
    "CERTIFICATE_VERSION", "DEFAULT_MAX_STATES", "MODELS", "VERDICTS",
    "CompiledCircuit", "SimulationError", "VerificationReport", "cell_table",
    "check_conformance", "compile_atomic", "compile_circuit",
    "compile_structural", "netlist_payload", "skipped_report",
    "verification_key", "verify_netlist",
]
