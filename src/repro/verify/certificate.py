"""Deterministic verification certificates.

A :class:`VerificationReport` records everything one conformance check
established -- verdict, the four property booleans, state/arc counts and a
counterexample trace -- in a JSON-serializable form that is byte-stable
across processes, hash seeds and serial-vs-parallel sweep runs.  Wall-clock
time is carried on the object (``seconds``) but deliberately excluded from
the canonical payload, exactly like the sweep keeps timings on the outcome
and never in the rows.

Certificates are cached in the unified content-addressed artifact store
(:class:`repro.pipeline.ArtifactStore`, also used by the pipeline stages
and the sweep rows): the key is the SHA-256 of the netlist structure, the
specification graph digest and the check configuration, so a warm store
serves the verdict without re-exploring the product state space -- and a
changed netlist or spec can never reuse a stale certificate.  Because the
key is content-based (not derived from how the netlist was produced),
identical netlists reached through different reduction strategies share
one certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.netlist import Netlist
from ..pipeline.hashing import digest_payload, graph_digest, netlist_payload
from ..sg.graph import StateGraph

#: Bump when the report layout or key derivation changes; old store entries
#: are simply never looked up again.  Version 2: certificates moved into
#: the unified pipeline :class:`~repro.pipeline.ArtifactStore`.
CERTIFICATE_VERSION = 2

#: Possible verdicts, from best to worst.  ``skipped`` marks design points
#: with nothing to verify (no synthesized circuit); ``state-limit`` marks an
#: aborted exploration.
VERDICTS = ("conforming", "non-conforming", "hazard", "deadlock",
            "not-semi-modular", "state-limit", "skipped")


@dataclass
class VerificationReport:
    """Outcome of verifying one implementation against its specification."""

    name: str
    model: str
    verdict: str
    conforming: bool = False
    hazard_free: bool = False
    deadlock_free: bool = False
    semi_modular: bool = False
    spec_states: int = 0
    spec_arcs: int = 0
    net_count: int = 0
    node_count: int = 0
    product_states: int = 0
    product_arcs: int = 0
    trace: List[Dict[str, object]] = field(default_factory=list)
    reason: Optional[str] = None
    #: Wall-clock seconds; excluded from :meth:`to_dict` so certificates are
    #: byte-identical across runs.
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise ValueError(f"unknown verdict {self.verdict!r}; "
                             f"expected one of {VERDICTS}")

    @property
    def ok(self) -> bool:
        """True when the implementation verified clean."""
        return self.verdict == "conforming"

    @property
    def skipped(self) -> bool:
        """True when there was nothing to verify (no circuit)."""
        return self.verdict == "skipped"

    def to_dict(self) -> Dict[str, object]:
        """Canonical JSON-ready payload (deterministic, no timings)."""
        return {
            "name": self.name,
            "model": self.model,
            "verdict": self.verdict,
            "conforming": self.conforming,
            "hazard_free": self.hazard_free,
            "deadlock_free": self.deadlock_free,
            "semi_modular": self.semi_modular,
            "spec_states": self.spec_states,
            "spec_arcs": self.spec_arcs,
            "net_count": self.net_count,
            "node_count": self.node_count,
            "product_states": self.product_states,
            "product_arcs": self.product_arcs,
            "trace": [dict(step) for step in self.trace],
            "reason": self.reason,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "VerificationReport":
        """Rebuild a report from its canonical payload."""
        fields = {key: payload[key] for key in (
            "name", "model", "verdict", "conforming", "hazard_free",
            "deadlock_free", "semi_modular", "spec_states", "spec_arcs",
            "net_count", "node_count", "product_states", "product_arcs",
            "trace", "reason")}
        return VerificationReport(**fields)

    def to_json(self) -> str:
        """The canonical payload as deterministic JSON text."""
        import json
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def trace_lines(self) -> List[str]:
        """Human-readable counterexample, one event per line."""
        lines = []
        for i, step in enumerate(self.trace, start=1):
            label = step.get("label") or step.get("net")
            lines.append(f"{i:3d}. {step['kind']:8s} {label}")
        return lines

    def summary(self) -> str:
        """One-line rendering for CLI output."""
        text = (f"{self.verdict} (spec {self.spec_states} states / "
                f"{self.spec_arcs} arcs, product {self.product_states} "
                f"states / {self.product_arcs} arcs, {self.node_count} nodes)")
        if self.reason:
            text += f" -- {self.reason}"
        return text


def skipped_report(name: str, reason: str,
                   model: str = "atomic") -> VerificationReport:
    """A report for design points with no circuit to verify."""
    return VerificationReport(name=name, model=model, verdict="skipped",
                              reason=reason)


def verification_key(netlist: Netlist, spec: StateGraph, model: str,
                     max_states: int) -> str:
    """Store key binding a certificate to (netlist, spec, configuration)."""
    return digest_payload({
        "kind": "verification",
        "version": CERTIFICATE_VERSION,
        "netlist": netlist_payload(netlist),
        "graph": graph_digest(spec),
        "model": model,
        "max_states": max_states,
    })


def verify_netlist(netlist: Netlist, spec: StateGraph,
                   model: str = "atomic",
                   max_states: Optional[int] = None,
                   name: Optional[str] = None,
                   store=None) -> Tuple[VerificationReport, bool]:
    """Check conformance, serving and feeding the certificate store.

    Returns ``(report, cached)``; with a ``store`` (an
    :class:`~repro.pipeline.ArtifactStore`), a prior certificate for the
    same (netlist, spec, model) is returned without re-exploration.
    """
    from .conformance import DEFAULT_MAX_STATES, check_conformance
    if max_states is None:
        max_states = DEFAULT_MAX_STATES
    key = None
    if store is not None:
        key = verification_key(netlist, spec, model, max_states)
        entry = store.get_entry(key, stage="verify")
        if entry is not None:
            try:
                report = VerificationReport.from_dict(entry["payload"])
            except (KeyError, TypeError, ValueError):
                pass  # unreadable certificate: recompute and overwrite
            else:
                # The display name is not part of the key: relabel the
                # cached certificate for the point that asked (identical
                # netlists across strategies share one certificate).
                if name is not None:
                    report.name = name
                return report, True
    report = check_conformance(netlist, spec, model=model,
                               max_states=max_states, name=name)
    if store is not None and key is not None:
        store.put_entry(key, "verify", report.to_dict())
    return report, False
