"""On-the-fly conformance checking of a netlist against its specification.

The checker explores the product of the circuit's reachable state space
(under the unbounded-gate-delay model of :mod:`repro.verify.simulator`)
with the specification state graph acting as the environment:

* **environment moves** -- every input event enabled at the current spec
  state may fire, driving the corresponding net;
* **circuit moves** -- every excited node may fire.  A node driving a
  specification signal must fire an event the spec enables at the current
  state (**output conformance**); internal decomposition nets move freely.

Along every product arc the checker asserts:

* **hazard-freedom** -- no node driving a non-input signal is excited and
  then disabled without firing (the speed-independence condition of
  Section 2, now checked on the *implementation* rather than the SG);
* **deadlock-freedom** -- every reachable product state has a successor;
* **semi-modularity** -- no excited node at all (internal nets included)
  and no enabled input event is withdrawn without firing.  Input
  withdrawal is an environment choice and internal-net churn is invisible
  at the interface, so semi-modularity is reported separately and only
  escalates the verdict under ``require_semi_modular=True``.

Exploration runs on the shared frontier engine of :mod:`repro.explore`
(breadth-first, fixed deterministic order), so the first failure found is
at minimal depth and the counterexample trace is minimal; the same order
makes reports byte-identical across hash seeds and serial-vs-parallel
sweep runs.  The state cap -- and optionally arc and wall-clock caps --
are one :class:`~repro.explore.ExplorationBudget`; running out is always
the structured ``"state-limit"`` verdict, never a silent truncation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..circuit.netlist import Netlist
from ..explore import (BudgetExceeded, ExplorationBudget,
                       FrontierExploration, ample_internal_moves)
from ..petri.stg import Direction, SignalKind
from ..sg.graph import StateGraph
from .certificate import VerificationReport
from .simulator import SimulationError, compile_circuit

#: Default cap on explored product states ("state-limit" verdict beyond).
DEFAULT_MAX_STATES = 1_000_000

_ProductState = Tuple[int, int]  # (packed net values, spec state id)


class _Failure(Exception):
    """Internal control flow: a property was refuted at ``state``."""

    def __init__(self, verdict: str, reason: str, state: _ProductState,
                 step: Optional[Dict[str, object]]) -> None:
        super().__init__(reason)
        self.verdict = verdict
        self.reason = reason
        self.state = state
        self.step = step


def check_conformance(netlist: Netlist, spec: StateGraph,
                      model: str = "atomic",
                      max_states: int = DEFAULT_MAX_STATES,
                      require_semi_modular: bool = False,
                      name: Optional[str] = None,
                      budget: Optional[ExplorationBudget] = None,
                      reduced: bool = False) -> VerificationReport:
    """Verify ``netlist`` against the specification SG ``spec``.

    ``spec`` is normally the CSC-resolved state graph the circuit was
    synthesized from (inserted state signals included).  Returns a
    :class:`VerificationReport`; it never raises on a *bad circuit* -- an
    unsimulatable netlist (missing driver, unknown cell) yields a
    ``non-conforming`` report with the reason.

    ``budget`` generalizes ``max_states`` to the full
    :class:`~repro.explore.ExplorationBudget` (states, arcs, wall-clock);
    when omitted, ``max_states`` alone caps the product.  With
    ``reduced=True`` the walk expands only the first spec-invisible
    (internal-net) move wherever one exists -- a partial-order pruning
    that is refutation-sound (any failure it reports is a real
    execution) but optimistic: when internal nets exist their races are
    themselves hazards, and pruning their interleavings can hide one.
    A reduced pass is exact only for models without internal moves
    (atomic, or structural over single-cube netlists); it is off by
    default and never used for certificates.
    """
    started = time.perf_counter()
    report_name = name or netlist.name
    compiled = spec.compiled()
    spec_states = len(compiled.states)
    spec_arcs = sum(len(out) for out in compiled.succ)

    def failed(verdict: str, reason: str,
               trace: List[Dict[str, object]],
               flags: Dict[str, bool],
               sim=None, product_states: int = 0,
               product_arcs: int = 0) -> VerificationReport:
        return VerificationReport(
            name=report_name, model=model, verdict=verdict,
            conforming=flags.get("conforming", False),
            hazard_free=flags.get("hazard_free", False),
            deadlock_free=flags.get("deadlock_free", False),
            semi_modular=flags.get("semi_modular", False),
            spec_states=spec_states, spec_arcs=spec_arcs,
            net_count=0 if sim is None else len(sim.nets),
            node_count=0 if sim is None else len(sim.nodes),
            product_states=product_states, product_arcs=product_arcs,
            trace=trace, reason=reason,
            seconds=time.perf_counter() - started)

    signals = spec.signals
    input_signals = [s for s in signals
                     if spec.kinds[s] == SignalKind.INPUT]
    try:
        sim = compile_circuit(netlist, signals, input_signals, model)
    except SimulationError as exc:
        return failed("non-conforming", f"cannot simulate netlist: {exc}",
                      [], {})

    if spec.initial is None:
        return failed("non-conforming", "specification has no initial state",
                      [], {}, sim=sim)
    initial_sid = compiled.index[spec.initial]
    initial_code = compiled.code_ints[initial_sid]
    if initial_code < 0:
        spec.code_of(spec.initial)  # raises StateGraphError
    pinned = {signal: (initial_code >> i) & 1
              for i, signal in enumerate(signals)}
    try:
        initial_values = sim.settle(pinned)
    except SimulationError as exc:
        return failed("non-conforming", str(exc), [], {}, sim=sim)

    net_of_signal = [sim.net_index[s] for s in signals]
    signal_index = {s: i for i, s in enumerate(signals)}
    labels = compiled.labels
    succ = compiled.succ
    is_input = compiled.is_input
    event_signal = compiled.event_signal
    event_direction = compiled.event_direction
    code_ints = compiled.code_ints

    if budget is None:
        budget = ExplorationBudget(max_states=max_states)
    start: _ProductState = (initial_values, initial_sid)
    semi_modular = True
    semi_reason: Optional[str] = None
    try:
        engine = FrontierExploration(start, budget)
    except BudgetExceeded as exceeded:
        return failed("state-limit", exceeded.exceedance.describe("product"),
                      [], {"conforming": True, "hazard_free": True,
                           "deadlock_free": True, "semi_modular": True},
                      sim=sim)
    meter = engine.meter

    try:
        for state in engine.drain():
            values, sid = state
            excited = sim.excited(values)
            spec_out = succ[sid]
            enabled_inputs = tuple(lid for lid in spec_out if is_input[lid])

            # (step, new values, new spec state, fired node, fired label)
            moves: List[Tuple[Dict[str, object], int, int,
                              Optional[int], Optional[int]]] = []
            for lid in sorted(spec_out):
                if not is_input[lid]:
                    continue
                tid = spec_out[lid]
                sigidx = event_signal[lid]
                new_bit = (code_ints[tid] >> sigidx) & 1
                new_values = sim.set_net(values, net_of_signal[sigidx],
                                         new_bit)
                step = {"kind": "input", "label": labels[lid],
                        "net": signals[sigidx], "value": new_bit}
                moves.append((step, new_values, tid, None, lid))
            for nid in excited:
                node = sim.nodes[nid]
                new_values = sim.fire(values, nid)
                if node.signal is None:
                    new_bit = (new_values >> node.out) & 1
                    net_name = sim.nets[node.out]
                    step = {"kind": "net",
                            "label": f"{net_name}{'+' if new_bit else '-'}",
                            "net": net_name, "value": new_bit}
                    moves.append((step, new_values, sid, nid, None))
                    continue
                sigidx = signal_index[node.signal]
                new_bit = (new_values >> node.out) & 1
                kind = ("output"
                        if spec.kinds[node.signal] == SignalKind.OUTPUT
                        else "internal")
                matching = []
                for lid in sorted(spec_out):
                    if is_input[lid] or event_signal[lid] != sigidx:
                        continue
                    direction = event_direction[lid]
                    if direction == Direction.RISE and new_bit != 1:
                        continue
                    if direction == Direction.FALL and new_bit != 0:
                        continue
                    matching.append(lid)
                event_text = f"{node.signal}{'+' if new_bit else '-'}"
                if not matching:
                    step = {"kind": kind, "label": event_text,
                            "net": node.signal, "value": new_bit}
                    raise _Failure(
                        "non-conforming",
                        f"circuit fires {event_text}, which the "
                        "specification does not enable here", state, step)
                for lid in matching:
                    step = {"kind": kind, "label": labels[lid],
                            "net": node.signal, "value": new_bit}
                    moves.append((step, new_values, spec_out[lid], nid, lid))

            if not moves:
                raise _Failure(
                    "deadlock",
                    "no node is excited and no input event is enabled",
                    state, None)
            if reduced:
                moves = ample_internal_moves(
                    moves, lambda move: move[0]["kind"] == "net")

            for step, new_values, tid, nid, fired_lid in moves:
                try:
                    meter.charge_arc()
                except BudgetExceeded as exceeded:
                    raise _Failure(
                        "state-limit",
                        exceeded.exceedance.describe("product"), state,
                        step) from None
                after = sim.excited_after(values, excited, new_values)
                after_set = set(after)
                for other in excited:
                    if other == nid or other in after_set:
                        continue
                    other_node = sim.nodes[other]
                    if other_node.signal is not None:
                        raise _Failure(
                            "hazard",
                            f"{other_node.signal} is excited, then disabled "
                            f"by {step['label']} without firing",
                            state, step)
                    if semi_modular:
                        semi_modular = False
                        semi_reason = (
                            f"internal net {sim.nets[other_node.out]} is "
                            f"excited, then disabled by {step['label']}")
                if tid != sid and semi_modular:
                    lost = [lid for lid in enabled_inputs
                            if lid != fired_lid and lid not in succ[tid]]
                    if lost:
                        semi_modular = False
                        semi_reason = (
                            f"input {labels[lost[0]]} is withdrawn by "
                            f"{step['label']} (environment choice)")
                successor = (new_values, tid)
                try:
                    engine.admit(successor, state, step)
                except BudgetExceeded as exceeded:
                    raise _Failure(
                        "state-limit",
                        exceeded.exceedance.describe("product"), state,
                        step) from None
    except _Failure as failure:
        # Properties not refuted before the failing arc are reported as
        # they stood: refuted ones are False, the rest held so far.
        flags = {
            "conforming": failure.verdict != "non-conforming",
            "hazard_free": failure.verdict != "hazard",
            "deadlock_free": failure.verdict != "deadlock",
            "semi_modular": semi_modular and failure.verdict != "hazard",
        }
        return failed(failure.verdict, failure.reason,
                      engine.trace_to(failure.state, failure.step),
                      flags, sim=sim, product_states=engine.state_count,
                      product_arcs=meter.arcs)
    except BudgetExceeded as exceeded:
        # Out of wall-clock between states: no single offending arc.
        return failed("state-limit", exceeded.exceedance.describe("product"),
                      [], {"conforming": True, "hazard_free": True,
                           "deadlock_free": True,
                           "semi_modular": semi_modular},
                      sim=sim, product_states=engine.state_count,
                      product_arcs=meter.arcs)

    verdict = "conforming"
    reason = None
    if not semi_modular:
        reason = semi_reason
        if require_semi_modular:
            verdict = "not-semi-modular"
    return VerificationReport(
        name=report_name, model=model, verdict=verdict,
        conforming=True, hazard_free=True, deadlock_free=True,
        semi_modular=semi_modular,
        spec_states=spec_states, spec_arcs=spec_arcs,
        net_count=len(sim.nets), node_count=len(sim.nodes),
        product_states=engine.state_count, product_arcs=meter.arcs,
        trace=[], reason=reason,
        seconds=time.perf_counter() - started)
