"""Packed-bitvector event-driven simulation of synthesized netlists.

The simulator executes a :class:`~repro.circuit.netlist.Netlist` under the
unbounded-gate-delay model of speed-independent design: every driver is a
*node* with a current output value; a node whose function evaluates to a
different value is **excited** and may fire at any time.  Net values are
packed into a single integer (bit ``i`` = net ``i``, the same convention as
:meth:`repro.sg.graph.StateGraph.code_int`), node functions are compiled to
lookup tables indexed by packed input bits, and the excited set is
maintained incrementally across a firing by rechecking only the fanout of
the nets that changed -- the netlist analogue of
:meth:`repro.petri.net.PetriNet.fire_incremental`.

Two delay models are supported:

* ``"atomic"`` -- one node per implemented signal, its whole combinational
  cone (decomposition trees, shared inverters, gC set/reset networks)
  collapsed into a single function.  This is the paper's own model: the
  2-input decomposition is assumed SI-preserving, so correctness is judged
  at complex-gate granularity.  Nets are exactly the specification signals,
  so a packed value *is* a state-graph binary code.
* ``"structural"`` -- every gate and alias is its own node with its own
  unbounded delay, exposing the internal nets of the decomposition.

Sequential cells (C elements, SR latches) evaluate to ``None`` when they
hold their value; a holding node is never excited.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..circuit.library import Cell
from ..circuit.netlist import Netlist

#: Delay models understood by :func:`compile_circuit`.
MODELS = ("atomic", "structural")

#: Nets with a fixed value in every simulation.
CONSTANT_NETS = {"GND": 0, "VDD": 1}


class SimulationError(Exception):
    """Raised for netlists the simulator cannot execute."""


# ----------------------------------------------------------------------
# cell semantics
# ----------------------------------------------------------------------
_COMBINATIONAL: Dict[str, Callable[[Tuple[int, ...]], int]] = {
    "INV": lambda a: 1 ^ a[0],
    "BUF": lambda a: a[0],
    "AND2": lambda a: a[0] & a[1],
    "OR2": lambda a: a[0] | a[1],
    "NAND2": lambda a: 1 ^ (a[0] & a[1]),
    "NOR2": lambda a: 1 ^ (a[0] | a[1]),
    "XOR2": lambda a: a[0] ^ a[1],
}


def _sequential_value(cell_name: str, inputs: Tuple[int, ...]) -> Optional[int]:
    """Next value of a sequential cell, or ``None`` when it holds."""
    if cell_name in ("C2", "C3"):
        if all(inputs):
            return 1
        if not any(inputs):
            return 0
        return None
    if cell_name == "SRLATCH":
        set_v, reset_v = inputs
        if set_v and not reset_v:
            return 1
        if reset_v and not set_v:
            return 0
        return None
    raise SimulationError(f"no simulation semantics for cell {cell_name!r}")


def cell_table(cell: Cell) -> Tuple[Optional[int], ...]:
    """Truth table of a cell indexed by packed input bits (``None`` = hold)."""
    entries: List[Optional[int]] = []
    for index in range(1 << cell.fanin):
        inputs = tuple((index >> k) & 1 for k in range(cell.fanin))
        if cell.sequential:
            entries.append(_sequential_value(cell.name, inputs))
        else:
            function = _COMBINATIONAL.get(cell.name)
            if function is None:
                raise SimulationError(
                    f"no simulation semantics for cell {cell.name!r}")
            entries.append(function(inputs))
    return tuple(entries)


# ----------------------------------------------------------------------
# nodes
# ----------------------------------------------------------------------
class TableNode:
    """One driver (gate or alias) compiled to a lookup table."""

    __slots__ = ("nid", "name", "signal", "out", "inputs", "support", "table")

    def __init__(self, nid: int, name: str, signal: Optional[str], out: int,
                 inputs: Tuple[int, ...], table: Tuple[Optional[int], ...]) -> None:
        self.nid = nid
        self.name = name
        self.signal = signal          # spec signal driven, if any
        self.out = out                # output net index
        self.inputs = inputs          # input net indices
        self.support = 0
        for net in inputs:
            self.support |= 1 << net
        self.table = table

    def evaluate(self, values: int) -> Optional[int]:
        index = 0
        for k, net in enumerate(self.inputs):
            index |= ((values >> net) & 1) << k
        return self.table[index]


class ConeNode:
    """A whole combinational cone collapsed into one node (atomic model).

    ``ops`` replays the cone's internal gates in topological order over a
    scratch environment; the root is either a plain net lookup or a
    sequential cell applied to internal nets.  Results are memoized on the
    packed input values masked to the cone's support, so re-evaluations in
    the product exploration are dictionary hits.
    """

    __slots__ = ("nid", "name", "signal", "out", "support", "_leaves", "_ops",
                 "_root", "_memo")

    _MISS = object()

    def __init__(self, nid: int, name: str, signal: str, out: int,
                 leaves: Tuple[Tuple[str, int], ...],
                 ops: Tuple[Tuple[str, Tuple[Optional[int], ...], Tuple[str, ...]], ...],
                 root: Tuple) -> None:
        self.nid = nid
        self.name = name
        self.signal = signal
        self.out = out
        self._leaves = leaves         # (net name, external net index)
        self._ops = ops               # (output net, table, input nets)
        self._root = root             # ("net", name) | ("table", table, inputs)
        self.support = 0
        for _, net in leaves:
            self.support |= 1 << net
        self._memo: Dict[int, Optional[int]] = {}

    def evaluate(self, values: int) -> Optional[int]:
        key = values & self.support
        cached = self._memo.get(key, self._MISS)
        if cached is not self._MISS:
            return cached
        env: Dict[str, int] = dict(CONSTANT_NETS)
        for name, net in self._leaves:
            env[name] = (values >> net) & 1
        for out_name, table, input_names in self._ops:
            index = 0
            for k, input_name in enumerate(input_names):
                index |= env[input_name] << k
            entry = table[index]
            if entry is None:
                raise SimulationError(
                    f"sequential cell inside the cone of {self.signal!r}")
            env[out_name] = entry
        kind = self._root[0]
        if kind == "net":
            result: Optional[int] = env[self._root[1]]
        else:
            _, table, input_names = self._root
            index = 0
            for k, input_name in enumerate(input_names):
                index |= env[input_name] << k
            result = table[index]
        self._memo[key] = result
        return result


# ----------------------------------------------------------------------
# compiled circuit
# ----------------------------------------------------------------------
class CompiledCircuit:
    """A netlist compiled for packed-bitvector event-driven simulation."""

    def __init__(self, nets: List[str], nodes: List, pinned: Dict[int, int],
                 model: str) -> None:
        self.model = model
        self.nets = nets
        self.net_index = {name: i for i, name in enumerate(nets)}
        self.nodes = nodes
        self.node_of_net: Dict[int, int] = {
            node.out: node.nid for node in nodes}
        #: constant nets and their fixed values (net index -> 0/1)
        self.pinned_constants = pinned
        fanout: List[List[int]] = [[] for _ in nets]
        for node in nodes:
            for net in range(len(nets)):
                if node.support & (1 << net):
                    fanout[net].append(node.nid)
        self.fanout: List[Tuple[int, ...]] = [tuple(ids) for ids in fanout]
        self._excited_memo: Dict[int, Tuple[int, ...]] = {}

    # -- values ---------------------------------------------------------
    def value(self, values: int, net: int) -> int:
        """Bit ``net`` of the packed value vector."""
        return (values >> net) & 1

    def set_net(self, values: int, net: int, value: int) -> int:
        """The vector with bit ``net`` forced to ``value``."""
        if value:
            return values | (1 << net)
        return values & ~(1 << net)

    def fire(self, values: int, nid: int) -> int:
        """Fire an excited node: its output assumes the evaluated value."""
        node = self.nodes[nid]
        target = node.evaluate(values)
        if target is None:
            raise SimulationError(f"node {node.name!r} fired while holding")
        return self.set_net(values, node.out, target)

    # -- excitation -----------------------------------------------------
    def _is_excited(self, nid: int, values: int) -> bool:
        node = self.nodes[nid]
        target = node.evaluate(values)
        return target is not None and target != (values >> node.out) & 1

    def excited(self, values: int) -> Tuple[int, ...]:
        """Node ids excited at ``values`` (sorted, memoized per value)."""
        cached = self._excited_memo.get(values)
        if cached is None:
            cached = tuple(node.nid for node in self.nodes
                           if self._is_excited(node.nid, values))
            self._excited_memo[values] = cached
        return cached

    def excited_after(self, previous: int, excited: Tuple[int, ...],
                      values: int) -> Tuple[int, ...]:
        """Excited set at ``values`` derived incrementally from a predecessor.

        Only nodes reading a changed net -- or driving one -- can change
        status; everything else carries over (the event-driven analogue of
        ``fire_incremental``'s affected-transition recheck).
        """
        cached = self._excited_memo.get(values)
        if cached is not None:
            return cached
        changed = previous ^ values
        affected: Set[int] = set()
        net = 0
        while changed:
            if changed & 1:
                affected.update(self.fanout[net])
                owner = self.node_of_net.get(net)
                if owner is not None:
                    affected.add(owner)
            changed >>= 1
            net += 1
        result = sorted(
            {nid for nid in excited if nid not in affected}
            | {nid for nid in affected if self._is_excited(nid, values)})
        as_tuple = tuple(result)
        self._excited_memo[values] = as_tuple
        return as_tuple

    # -- initialization -------------------------------------------------
    def settle(self, pinned_values: Dict[str, int]) -> int:
        """Initial packed values: pin the given nets, settle the rest.

        Non-pinned nets (decomposition internals) are driven to their stable
        combinational values; a failure to stabilize within ``len(nodes)``
        sweeps witnesses a zero-delay oscillation and raises.
        """
        values = 0
        pinned_bits: Set[int] = set()
        for net, value in self.pinned_constants.items():
            values = self.set_net(values, net, value)
            pinned_bits.add(net)
        for name, value in pinned_values.items():
            net = self.net_index.get(name)
            if net is None:
                continue
            values = self.set_net(values, net, value)
            pinned_bits.add(net)
        free = [node for node in self.nodes if node.out not in pinned_bits]
        for _ in range(len(free) + 1):
            changed = False
            for node in free:
                target = node.evaluate(values)
                if target is not None and target != (values >> node.out) & 1:
                    values = self.set_net(values, node.out, target)
                    changed = True
            if not changed:
                return values
        raise SimulationError("internal nets do not stabilize (zero-delay "
                              "oscillation in the decomposition logic)")


# ----------------------------------------------------------------------
# compilation
# ----------------------------------------------------------------------
def _driver_kind(netlist: Netlist, net: str):
    """(kind, payload): ("gate", Gate) | ("alias", source) | (None, None)."""
    driver = netlist.driver_of(net)
    if driver is None:
        return None, None
    if driver.startswith("alias:"):
        return "alias", driver[len("alias:"):]
    for gate in netlist.gates:
        if gate.name == driver:
            return "gate", gate
    raise SimulationError(f"net {net!r} names a missing driver {driver!r}")


def _collect_nets(netlist: Netlist) -> List[str]:
    """Every referenced net, in deterministic declaration order."""
    ordered: List[str] = []
    seen: Set[str] = set()

    def add(net: str) -> None:
        if net not in seen:
            seen.add(net)
            ordered.append(net)

    for net in netlist.primary_inputs:
        add(net)
    for gate in netlist.gates:
        for net in gate.inputs:
            add(net)
        add(gate.output)
    for alias in netlist.aliases:
        add(alias.source)
        add(alias.target)
    for net in netlist.primary_outputs:
        add(net)
    return ordered


def compile_structural(netlist: Netlist, signals: Sequence[str],
                       input_signals: Iterable[str]) -> CompiledCircuit:
    """Compile every gate and alias as its own node.

    ``signals`` are the specification's signal names (their nets carry the
    conformance obligations); ``input_signals`` are driven by the
    environment and therefore get no node even if the netlist drives them.
    """
    inputs = set(input_signals)
    non_input = [s for s in signals if s not in inputs]
    nets = _collect_nets(netlist)
    for signal in signals:
        if signal not in nets:
            nets.append(signal)
    index = {name: i for i, name in enumerate(nets)}
    pinned = {index[name]: value for name, value in CONSTANT_NETS.items()
              if name in index}
    nodes: List = []
    for gate in netlist.gates:
        if gate.output in inputs:
            continue  # environment-driven: the netlist driver is ignored
        signal = gate.output if gate.output in non_input else None
        nodes.append(TableNode(
            len(nodes), gate.name, signal, index[gate.output],
            tuple(index[i] for i in gate.inputs), cell_table(gate.cell)))
    buf_table = (0, 1)
    for alias in netlist.aliases:
        if alias.target in inputs:
            continue
        if alias.source in CONSTANT_NETS and alias.target not in non_input:
            pinned[index[alias.target]] = CONSTANT_NETS[alias.source]
            continue
        signal = alias.target if alias.target in non_input else None
        nodes.append(TableNode(
            len(nodes), f"alias:{alias.source}->{alias.target}", signal,
            index[alias.target], (index[alias.source],), buf_table))
    return CompiledCircuit(nets, nodes, pinned, "structural")


def _cone_of(netlist: Netlist, signal: str,
             boundary: Set[str]) -> Tuple[Tuple[str, ...], Tuple, Tuple]:
    """Collapse the combinational cone driving ``signal``.

    Walks drivers backwards until hitting ``boundary`` nets (specification
    signals) or constants; returns (leaf nets, internal ops in topological
    order, root spec).  A sequential cell is only allowed at the root (the
    C element of a gC implementation).
    """
    kind, payload = _driver_kind(netlist, signal)
    if kind is None:
        raise SimulationError(f"signal {signal!r} has no driver in the netlist")

    leaves: List[str] = []
    ops: List[Tuple[str, Tuple[Optional[int], ...], Tuple[str, ...]]] = []
    emitted: Set[str] = set()
    visiting: Set[str] = set()

    def visit(net: str) -> None:
        """Emit the ops computing ``net`` (post-order)."""
        if net in emitted or net in CONSTANT_NETS:
            return
        if net in boundary or netlist.driver_of(net) is None:
            emitted.add(net)
            leaves.append(net)
            return
        if net in visiting:
            raise SimulationError(
                f"combinational cycle through internal net {net!r} "
                f"in the cone of {signal!r}")
        visiting.add(net)
        net_kind, net_payload = _driver_kind(netlist, net)
        if net_kind == "alias":
            visit(net_payload)
            ops.append((net, (0, 1), (net_payload,)))
        else:
            if net_payload.cell.sequential:
                raise SimulationError(
                    f"sequential cell {net_payload.name!r} feeds the cone of "
                    f"{signal!r} through internal net {net!r}")
            for input_net in net_payload.inputs:
                visit(input_net)
            ops.append((net, cell_table(net_payload.cell),
                        tuple(net_payload.inputs)))
        visiting.discard(net)
        emitted.add(net)

    if kind == "alias":
        if payload in CONSTANT_NETS:
            constant = CONSTANT_NETS[payload]
            return (), (), ("table", (constant,), ())
        visit(payload)
        root: Tuple = ("net", payload)
    else:
        for input_net in payload.inputs:
            visit(input_net)
        root = ("table", cell_table(payload.cell), tuple(payload.inputs))
    return tuple(leaves), tuple(ops), root


def compile_atomic(netlist: Netlist, signals: Sequence[str],
                   input_signals: Iterable[str]) -> CompiledCircuit:
    """Compile one collapsed-cone node per implemented signal.

    Nets are exactly ``signals`` in order, so packed values coincide with
    the specification's binary codes (:meth:`StateGraph.code_int`).
    """
    inputs = set(input_signals)
    nets = list(signals)
    index = {name: i for i, name in enumerate(nets)}
    boundary = set(signals)
    nodes: List = []
    for signal in signals:
        if signal in inputs:
            continue
        leaves, ops, root = _cone_of(netlist, signal, boundary)
        leaf_pairs = tuple((leaf, index[leaf]) for leaf in leaves
                           if leaf in index)
        unknown = [leaf for leaf in leaves if leaf not in index]
        if unknown:
            raise SimulationError(
                f"cone of {signal!r} reads nets {unknown!r} that are neither "
                "specification signals nor constants")
        nodes.append(ConeNode(len(nodes), f"cone:{signal}", signal,
                              index[signal], leaf_pairs, ops, root))
    return CompiledCircuit(nets, nodes, {}, "atomic")


def compile_circuit(netlist: Netlist, signals: Sequence[str],
                    input_signals: Iterable[str],
                    model: str = "atomic") -> CompiledCircuit:
    """Compile a netlist under one of the :data:`MODELS`."""
    if model == "atomic":
        return compile_atomic(netlist, signals, input_signals)
    if model == "structural":
        return compile_structural(netlist, signals, input_signals)
    raise ValueError(f"unknown delay model {model!r}; expected one of {MODELS}")
