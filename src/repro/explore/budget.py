"""One budget type for every exploration loop.

Before this module, the three explicit-state searches each had their own
limit semantics: :func:`repro.sg.generator.generate_sg` raised a bare
``StateGraphError`` past ``limit`` states, the conformance product turned
``max_states`` into a ``"state-limit"`` verdict, and the reduction search
silently set a ``capped`` flag at ``max_explored``.  They now all consume
an :class:`ExplorationBudget` -- max states, max arcs, optional wall-clock
-- and report exceedance through one structured value, a
:class:`BudgetExceedance` carried by :class:`BudgetExceeded`.  Each caller
still *presents* the exceedance in its own vocabulary (exception, verdict,
``capped`` stat), but the accounting, the off-by-one conventions and the
reporting payload come from one place.

Conventions (the unified semantics of the former three):

* ``max_states`` counts *admitted* (distinct) states, the initial state
  included; a budget of ``n`` admits exactly ``n`` states and raises while
  admitting state ``n + 1``.
* ``max_arcs`` counts traversed arcs (successor edges, duplicates
  included); a budget of ``n`` allows exactly ``n`` arcs.
* ``max_seconds`` is wall-clock from :meth:`ExplorationBudget.meter`;
  it is checked at admission points, not asynchronously.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["BudgetExceedance", "BudgetExceeded", "BudgetMeter",
           "ExplorationBudget"]


@dataclass(frozen=True)
class BudgetExceedance:
    """Structured record of which resource ran out, and where.

    ``resource`` is ``"states"``, ``"arcs"``, ``"nodes"`` or
    ``"seconds"``; ``limit`` is the configured cap for that resource;
    ``states``/``arcs`` are the counts admitted *within* budget when the
    exploration stopped (the partial result is exactly that big).
    ``nodes`` is the symbolic engine's allocated-BDD-node count, carried
    only when a node budget was being metered.  ``seconds`` is the
    elapsed wall clock when the budget tripped and ``level`` the BFS
    depth being expanded at that moment -- diagnostic context carried for
    :meth:`diagnose`, deliberately absent from :meth:`describe` (whose
    text lands in deterministic certificate payloads and must not vary
    run to run).
    """

    resource: str
    limit: float
    states: int
    arcs: int
    seconds: Optional[float] = None
    level: Optional[int] = None
    nodes: Optional[int] = None

    def describe(self, subject: str = "exploration") -> str:
        """Deterministic one-line rendering, e.g. for exception text."""
        if self.resource == "seconds":
            return f"{subject} exceeded {self.limit:g}s wall clock"
        return f"{subject} exceeded {int(self.limit)} {self.resource}"

    def diagnose(self, subject: str = "exploration") -> str:
        """Verbose rendering with elapsed wall clock and BFS depth.

        For human-facing error reports (CLI stderr); unlike
        :meth:`describe` the text varies with timing, so it must never
        feed a certificate or any other canonical payload.
        """
        text = (f"{self.describe(subject)} after {self.states} states, "
                f"{self.arcs} arcs")
        if self.nodes is not None:
            text += f", {self.nodes} BDD nodes"
        if self.seconds is not None:
            text += f", {self.seconds:.2f}s elapsed"
        if self.level is not None:
            text += f", at BFS level {self.level}"
        return text

    def to_payload(self) -> dict:
        """JSON-ready rendering for reports and service responses."""
        payload = {"resource": self.resource, "limit": self.limit,
                   "states": self.states, "arcs": self.arcs}
        if self.seconds is not None:
            payload["seconds"] = round(self.seconds, 6)
        if self.level is not None:
            payload["level"] = self.level
        if self.nodes is not None:
            payload["nodes"] = self.nodes
        return payload


class BudgetExceeded(Exception):
    """An exploration ran out of budget; carries the structured record."""

    def __init__(self, exceedance: BudgetExceedance,
                 message: Optional[str] = None) -> None:
        super().__init__(message or exceedance.describe())
        self.exceedance = exceedance


@dataclass(frozen=True)
class ExplorationBudget:
    """Resource limits for one exploration run (``None`` = unbounded)."""

    max_states: Optional[int] = None
    max_arcs: Optional[int] = None
    max_seconds: Optional[float] = None
    #: Allocated-BDD-node cap, metered only by the symbolic engine
    #: (:mod:`repro.symbolic.reach`); the explicit engines ignore it.
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_states", "max_arcs", "max_nodes"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.max_seconds is not None and self.max_seconds < 0:
            raise ValueError(f"max_seconds must be >= 0, "
                             f"got {self.max_seconds}")

    @property
    def unbounded(self) -> bool:
        """True when nothing at all is capped."""
        return (self.max_states is None and self.max_arcs is None
                and self.max_seconds is None and self.max_nodes is None)

    def meter(self) -> "BudgetMeter":
        """A fresh mutable meter (starts the wall clock, if any)."""
        return BudgetMeter(self)

    def to_payload(self) -> dict:
        """JSON-ready rendering (e.g. for config slices)."""
        payload = {"max_states": self.max_states, "max_arcs": self.max_arcs,
                   "max_seconds": self.max_seconds}
        # Omitted when unset so pre-symbolic renderings keep their bytes.
        if self.max_nodes is not None:
            payload["max_nodes"] = self.max_nodes
        return payload


class BudgetMeter:
    """Mutable charge counter for one exploration run.

    The two state-space loops (generation, conformance product) call
    :meth:`admit_state` / :meth:`charge_arc` and let :class:`BudgetExceeded`
    propagate; the reduction search, whose ``capped`` flag must flip
    *before* a candidate past the budget is even generated, uses the
    non-raising :meth:`states_exhausted` pre-check with the same counters.
    """

    __slots__ = ("budget", "states", "arcs", "nodes", "level", "_started")

    def __init__(self, budget: ExplorationBudget) -> None:
        self.budget = budget
        self.states = 0
        self.arcs = 0
        self.nodes = 0
        #: BFS depth currently being expanded; the frontier engines keep
        #: it current so exceedance reports can say *where* they stopped.
        self.level = 0
        self._started = time.perf_counter()

    def elapsed(self) -> float:
        """Wall-clock seconds since this meter was created."""
        return time.perf_counter() - self._started

    def _exceed(self, resource: str, limit: float) -> "BudgetExceeded":
        return BudgetExceeded(BudgetExceedance(
            resource=resource, limit=limit,
            states=self.states, arcs=self.arcs,
            seconds=self.elapsed(), level=self.level,
            nodes=self.nodes or None))

    def admit_state(self) -> None:
        """Charge one newly admitted (distinct) state."""
        limit = self.budget.max_states
        if limit is not None and self.states + 1 > limit:
            raise self._exceed("states", limit)
        self.states += 1
        self.check_clock()

    def charge_arc(self, count: int = 1) -> None:
        """Charge ``count`` traversed arcs."""
        limit = self.budget.max_arcs
        if limit is not None and self.arcs + count > limit:
            raise self._exceed("arcs", limit)
        self.arcs += count

    def charge_nodes(self, total: int) -> None:
        """Record the symbolic engine's allocated node total (absolute).

        Unlike :meth:`admit_state` this is an absolute gauge, not an
        increment: the BDD unique table only grows, so the engine reports
        its current size and the meter raises once it passes the cap.
        """
        self.nodes = total
        limit = self.budget.max_nodes
        if limit is not None and total > limit:
            raise self._exceed("nodes", limit)

    def states_exhausted(self, admitted: Optional[int] = None) -> bool:
        """Non-raising pre-check: would one more state exceed the budget?

        ``admitted`` overrides the meter's own state count for callers
        that track distinct configurations in their own ``seen`` set.
        """
        limit = self.budget.max_states
        if limit is None:
            return False
        count = self.states if admitted is None else admitted
        return count >= limit

    def check_clock(self) -> None:
        """Raise when the wall-clock budget has run out."""
        limit = self.budget.max_seconds
        if limit is None:
            return
        if time.perf_counter() - self._started > limit:
            raise self._exceed("seconds", limit)
