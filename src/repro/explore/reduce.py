"""Partial-order reduction hooks for the frontier engines.

Off by default everywhere: with reduction off the engines explore the
full state space and all outputs stay byte-identical to the unreduced
code paths.  Switched on, the hooks shrink the explored space while
preserving the properties the callers check:

* :func:`stubborn_reducer` builds a per-state stubborn-set selector for
  net reachability (Valmari-style, deadlock-preserving): from the first
  enabled transition in declaration order, close under (a) conflicting
  transitions of every enabled member and (b) producers of the first
  unmarked input place of every disabled member, then expand only the
  enabled members of the closure.  Choice-free subnets collapse to
  singleton expansions; the full enabled set is the worst case.  The
  reduced graph reaches a subset of the full markings and exactly the
  same deadlocks.
* :func:`ample_internal_moves` is the conformance product's analogue:
  when a product state offers moves invisible to the specification
  (internal, signal-less circuit nodes), only the first one is
  expanded.  Any failure the pruned walk finds is a real execution,
  but a pass is exact only when the model has no internal moves at
  all (the atomic model, or single-cube structural netlists) --
  internal-net races are themselves hazards, so pruning their
  interleavings can hide a violation the exhaustive walk would catch.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

from ..petri.net import PackedNet

__all__ = ["ample_internal_moves", "stubborn_reducer"]

Move = TypeVar("Move")


def stubborn_reducer(packed: PackedNet) -> Callable[[int, int], int]:
    """A ``reducer(row, enabled_bits) -> expanded_bits`` stubborn selector.

    All three inputs/outputs are bitmasks: ``row`` over places,
    ``enabled_bits`` and the result over transitions.  The selection is
    deterministic (seeded from the lowest enabled transition index, i.e.
    net declaration order), so reduced runs are reproducible.
    """
    conflicts = packed.conflicts
    producers = packed.producers
    pre_places = packed.pre_places

    def select(row: int, enabled: int) -> int:
        if enabled & (enabled - 1) == 0:
            return enabled
        stubborn = enabled & -enabled
        work = stubborn
        while work:
            low = work & -work
            work ^= low
            t = low.bit_length() - 1
            if enabled >> t & 1:
                grown = conflicts[t]
            else:
                grown = 0
                for place in pre_places[t]:
                    if not row >> place & 1:
                        grown = producers[place]
                        break
            fresh = grown & ~stubborn
            stubborn |= fresh
            work |= fresh
        return stubborn & enabled

    return select


def ample_internal_moves(moves: Sequence[Move],
                         invisible: Callable[[Move], bool]) -> List[Move]:
    """Keep only the first spec-invisible move, when one exists.

    With no invisible move on offer, all moves are returned unchanged --
    visible moves must never be pruned, they are what conformance
    judges.  Refutation-sound, not verification-complete: the pruned
    walk explores a subset of executions, so its failures are real but
    its passes certify nothing about the pruned interleavings.
    """
    for move in moves:
        if invisible(move):
            return [move]
    return list(moves)
