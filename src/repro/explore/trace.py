"""Shared minimal-trace reconstruction.

Every frontier engine records discoveries in the same parent-map shape
-- ``state -> None`` for the initial state, ``state -> (parent, step)``
for everything else -- so witnesses and counterexamples are rebuilt by
one deterministic walk, whoever ran the search.  Because the engines
admit states breadth-first, the reconstructed trace is a *shortest*
step sequence to the state.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["minimal_trace"]

ParentMap = Dict[Hashable, Optional[Tuple[Hashable, object]]]


def minimal_trace(parents: ParentMap, state: Hashable,
                  final_step: Optional[object] = None) -> List[object]:
    """The step sequence from the initial state to ``state``.

    ``final_step``, when given, is appended after the walk -- the
    conventional spot for the offending event of a counterexample,
    which is a step *out of* ``state`` and so never in the parent map.
    """
    steps: List[object] = []
    current = state
    while True:
        entry = parents[current]
        if entry is None:
            break
        current, step = entry
        steps.append(step)
    steps.reverse()
    if final_step is not None:
        steps.append(final_step)
    return steps
