"""Level-synchronized frontier engines.

Two engines share one discipline -- breadth-first over levels, one
:class:`~repro.explore.budget.BudgetMeter` charging admissions, one
parent map for trace reconstruction:

* :class:`FrontierExploration` drives searches whose successor relation
  lives in the caller (the conformance product walks circuit moves and
  spec arcs, not a net).  Draining order is exactly FIFO, so rebasing a
  hand-rolled ``deque`` loop onto it preserves which counterexample is
  found first, byte for byte.
* :func:`explore_packed` / :func:`explore_tuples` own the Petri-net
  token game for state-graph generation and raw reachability.  The
  packed engine expands a whole level per transition with int-wide
  bitwise ops (:meth:`repro.petri.net.PackedNet.enabled_columns`); the
  tuple engine is the per-state fallback for nets outside the 1-safe
  packed regime, and the baseline the bench compares against.

Both net engines emit the same :class:`ExplorationRun` -- states in
admission order plus ``(source, transition, target)`` index arcs -- and
explore the same state *set*; only the admission order differs (the
packed engine discovers per level transition-major, the tuple engine
state-major).  Everything downstream consumes canonicalized payloads,
so the two orders are interchangeable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (Callable, Dict, Hashable, Iterator, List, Optional,
                    Tuple)

from ..obs import progress as obs_progress
from ..obs.logs import structured as obs_log
from ..obs.metrics import registry as obs_registry
from ..obs.trace import span as obs_span
from ..petri.net import PackedNet, PackedOverflowError, PetriNet
from .budget import BudgetMeter, ExplorationBudget
from .trace import minimal_trace

__all__ = ["ExplorationRun", "FrontierExploration", "explore_packed",
           "explore_tuples"]

_UNBOUNDED = ExplorationBudget()


def _frontier_heartbeat(engine: str, meter: BudgetMeter, depth: int,
                        frontier: int, states: int, arcs: int,
                        force: bool = False) -> None:
    """One per-level progress event (no-op unless a hook is installed)."""
    if not obs_progress.active():
        return
    elapsed = meter.elapsed()
    fields: Dict[str, object] = {
        "engine": engine, "level": depth, "frontier": frontier,
        "states": states, "arcs": arcs,
        "states_per_s": round(states / elapsed, 1) if elapsed > 0 else 0.0,
    }
    limit = meter.budget.max_states
    if limit is not None:
        fields["budget_remaining"] = int(limit) - states
    obs_progress.emit("frontier", fields, force=force)


def _record_run(engine: str, states: int, arcs: int, levels: int) -> None:
    """Fold one finished reachability run into the default registry."""
    reg = obs_registry()
    reg.counter("repro_explore_runs_total",
                "Completed reachability runs.", engine=engine).inc()
    reg.counter("repro_explore_states_total",
                "States admitted by reachability runs.",
                engine=engine).inc(states)
    reg.counter("repro_explore_arcs_total",
                "Arcs traversed by reachability runs.",
                engine=engine).inc(arcs)
    reg.counter("repro_explore_levels_total",
                "BFS levels expanded by reachability runs.",
                engine=engine).inc(levels)


class FrontierExploration:
    """Budgeted BFS driver over opaque hashable states.

    The caller pulls states from :meth:`drain` and feeds successors back
    through :meth:`admit`; the driver owns the visited set, the FIFO
    level order, the parent map and the budget charging.  ``admit``
    raises :class:`~repro.explore.budget.BudgetExceeded` (never silently
    drops), so exceedance always reaches the caller as a structured
    event.
    """

    def __init__(self, initial: Hashable,
                 budget: Optional[ExplorationBudget] = None) -> None:
        self.meter: BudgetMeter = (budget or _UNBOUNDED).meter()
        self.parents: Dict[Hashable, Optional[Tuple[Hashable, object]]] = {}
        self._queue: deque = deque()
        self._level = 0
        self._level_remaining = 1
        self._next_level_count = 0
        self.meter.admit_state()
        self.parents[initial] = None
        self._queue.append(initial)

    @property
    def level(self) -> int:
        """The BFS depth of the state most recently drained."""
        return self._level

    @property
    def state_count(self) -> int:
        return len(self.parents)

    def drain(self) -> Iterator[Hashable]:
        """Yield states in admission (FIFO / level) order until empty."""
        queue = self._queue
        while queue:
            if self._level_remaining == 0:
                self._level += 1
                self._level_remaining = self._next_level_count
                self._next_level_count = 0
                self.meter.level = self._level
                self.meter.check_clock()
                _frontier_heartbeat("driver", self.meter, self._level,
                                    self._level_remaining,
                                    len(self.parents), self.meter.arcs)
            self._level_remaining -= 1
            yield queue.popleft()

    def admit(self, state: Hashable, parent: Hashable,
              step: object) -> bool:
        """Record a successor; True when the state is new (and enqueued)."""
        if state in self.parents:
            return False
        self.meter.admit_state()
        self.parents[state] = (parent, step)
        self._queue.append(state)
        self._next_level_count += 1
        return True

    def trace_to(self, state: Hashable,
                 final_step: Optional[object] = None) -> List[object]:
        """Minimal step sequence from the initial state to ``state``."""
        return minimal_trace(self.parents, state, final_step)


@dataclass(frozen=True)
class ExplorationRun:
    """Result of one net reachability run.

    ``states`` lists markings in admission order (index 0 = initial);
    ``arcs`` are ``(source_index, transition_index, target_index)``
    triples in traversal order; ``levels`` is the number of BFS levels
    expanded.  The packed engine's states are packed ints, the tuple
    engine's are tuple markings.
    """

    states: List[object]
    arcs: List[Tuple[int, int, int]]
    levels: int


Reducer = Callable[[int, int], int]


def explore_packed(packed: PackedNet,
                   budget: Optional[ExplorationBudget] = None,
                   reducer: Optional[Reducer] = None) -> ExplorationRun:
    """Vectorized reachability over packed markings.

    Each frontier level is transposed into per-place columns once, and
    each transition's enabled set across the whole level is a single
    int-wide AND -- per-state Python work happens only for states that
    actually fire.  With a ``reducer`` (``reducer(row, enabled_bits) ->
    expanded_bits``, e.g. a stubborn-set selector) expansion falls back
    to per-state enabled bitmasks, trading vectorization for a smaller
    state space.

    Raises :class:`~repro.petri.net.PackedOverflowError` when the net
    leaves the 1-safe regime mid-run; callers fall back to
    :func:`explore_tuples`.
    """
    meter = (budget or _UNBOUNDED).meter()
    if reducer is not None:
        # The per-state path gives up the level-vectorized expansion; that
        # degradation used to be silent, which made "why is stubborn-set
        # exploration slower per state?" a recurring surprise.
        obs_registry().counter(
            "repro_frontier_fallback_per_state_total",
            "Packed explorations that dropped to the per-state path "
            "because a reducer was installed.").inc()
        obs_log("frontier.fallback_per_state", engine="packed",
                reason="reducer", transitions=len(packed.transition_names))
    pre_masks = packed.pre_masks
    post_masks = packed.post_masks
    index: Dict[int, int] = {packed.initial: 0}
    states: List[int] = [packed.initial]
    meter.admit_state()
    arcs: List[Tuple[int, int, int]] = []
    level: List[int] = [0]
    levels = 0
    while level:
        depth = levels
        levels += 1
        meter.level = depth
        with obs_span("frontier:level", engine="packed", level=depth,
                      frontier=len(level)) as level_span:
            level_rows = [states[i] for i in level]
            next_level: List[int] = []
            if reducer is None:
                for t, mask in enumerate(packed.enabled_columns(level_rows)):
                    clear = ~pre_masks[t]
                    post = post_masks[t]
                    while mask:
                        low = mask & -mask
                        mask ^= low
                        slot = low.bit_length() - 1
                        cleared = level_rows[slot] & clear
                        if cleared & post:
                            raise PackedOverflowError(
                                f"firing "
                                f"{packed.transition_names[t]!r} leaves "
                                f"the 1-safe regime")
                        successor = cleared | post
                        meter.charge_arc()
                        target = index.get(successor)
                        if target is None:
                            meter.admit_state()
                            target = len(states)
                            index[successor] = target
                            states.append(successor)
                            next_level.append(target)
                        arcs.append((level[slot], t, target))
            else:
                for slot, source in enumerate(level):
                    row = level_rows[slot]
                    chosen = reducer(row, packed.enabled_bits(row))
                    while chosen:
                        low = chosen & -chosen
                        chosen ^= low
                        t = low.bit_length() - 1
                        successor = packed.fire_bits(t, row)
                        meter.charge_arc()
                        target = index.get(successor)
                        if target is None:
                            meter.admit_state()
                            target = len(states)
                            index[successor] = target
                            states.append(successor)
                            next_level.append(target)
                        arcs.append((source, t, target))
            meter.check_clock()
            if level_span is not None:
                level_span.set(admitted=len(next_level),
                               states=len(states), arcs=len(arcs))
        _frontier_heartbeat("packed", meter, depth, len(level),
                            len(states), len(arcs), force=not next_level)
        level = next_level
    _record_run("packed", len(states), len(arcs), levels)
    return ExplorationRun(states=states, arcs=arcs, levels=levels)


def explore_tuples(net: PetriNet,
                   budget: Optional[ExplorationBudget] = None
                   ) -> ExplorationRun:
    """Per-state reachability over tuple markings.

    The general-semantics fallback (and bench baseline): weighted arcs
    and token counts above one are fine here.  Uses
    :meth:`~repro.petri.net.PetriNet.fire_incremental` so each firing
    only rechecks the transitions whose enabling it can change.
    Successors of one state are expanded in net declaration order.
    """
    meter = (budget or _UNBOUNDED).meter()
    order = {t: i for i, t in enumerate(net.transition_names)}
    initial = net.initial_marking()
    index: Dict[tuple, int] = {initial: 0}
    states: List[tuple] = [initial]
    meter.admit_state()
    arcs: List[Tuple[int, int, int]] = []
    enabled_of: List[frozenset] = [
        frozenset(net.enabled_transitions(initial))]
    level: List[int] = [0]
    levels = 0
    while level:
        depth = levels
        levels += 1
        meter.level = depth
        with obs_span("frontier:level", engine="tuples", level=depth,
                      frontier=len(level)) as level_span:
            next_level: List[int] = []
            for source in level:
                marking = states[source]
                enabled = enabled_of[source]
                for name in sorted(enabled, key=order.__getitem__):
                    successor, succ_enabled = net.fire_incremental(
                        name, marking, enabled)
                    meter.charge_arc()
                    target = index.get(successor)
                    if target is None:
                        meter.admit_state()
                        target = len(states)
                        index[successor] = target
                        states.append(successor)
                        enabled_of.append(succ_enabled)
                        next_level.append(target)
                    arcs.append((source, order[name], target))
            meter.check_clock()
            if level_span is not None:
                level_span.set(admitted=len(next_level),
                               states=len(states), arcs=len(arcs))
        _frontier_heartbeat("tuples", meter, depth, len(level),
                            len(states), len(arcs), force=not next_level)
        level = next_level
    _record_run("tuples", len(states), len(arcs), levels)
    return ExplorationRun(states=states, arcs=arcs, levels=levels)
