"""The shared exploration core.

One budgeted, level-synchronized frontier engine under the three
explicit-state searches of the flow -- state-graph generation
(`repro.sg.generator`), the reduction searches (`repro.reduction`) and
the conformance product (`repro.verify.conformance`).  See
`docs/architecture.md` ("The exploration core") for the design.
"""

from .budget import (BudgetExceedance, BudgetExceeded, BudgetMeter,
                     ExplorationBudget)
from .frontier import (ExplorationRun, FrontierExploration, explore_packed,
                       explore_tuples)
from .reduce import ample_internal_moves, stubborn_reducer
from .trace import minimal_trace

__all__ = [
    "BudgetExceedance",
    "BudgetExceeded",
    "BudgetMeter",
    "ExplorationBudget",
    "ExplorationRun",
    "FrontierExploration",
    "ample_internal_moves",
    "explore_packed",
    "explore_tuples",
    "minimal_trace",
    "stubborn_reducer",
]
