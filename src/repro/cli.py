"""Command-line interface: a petrify-style front end to the flow.

Usage (also via ``python -m repro``)::

    python -m repro check  spec.g [--engine auto|packed|tuples|symbolic]
    python -m repro sg     spec.g [--dot] [--max-states N] [--max-arcs N]
                                   [--stubborn] [--engine ...] [--max-nodes N]
    python -m repro synth  spec.g [--full] [--no-reduce] [--keep li-,ri-]
                                   [-W 0.5] [--max-csc 4] [--store DIR]
                                   [--sg-max-states N] [--sg-max-arcs N]
                                   [--engine ...]
    python -m repro reduce spec.g [-o out.g]   # reduce + re-derive an STG
    python -m repro verify spec.g [--strategies none,full] [--store DIR]
                                   [--model atomic|structural]
    python -m repro sweep  [--specs lr,mmu] [--jobs 4] [--store DIR]
                           [--format md|csv|json] [-o report.md] [--verify]
    python -m repro serve  [--port 8080] [--workers 2] [--store DIR]
    python -m repro cache  stats|gc|clear DIR [--max-bytes N]
    python -m repro bench  [--cases C[,C...]] [--tier quick|full|all]
                           [--quick] [--out BENCH.json]
                           [--against BENCH_baseline.json] [--tolerance 0.5]
    python -m repro trace  summarize out.json  # aggregate a --trace file

``sg``/``synth``/``sweep``/``verify`` accept ``--trace PATH``
(``--trace-format json|chrome``) to record a span trace of the run --
pipeline stages, frontier levels -- without changing any output byte
(:mod:`repro.obs`); the global ``--log-level info`` (or ``REPRO_LOG``)
streams structured progress heartbeats to stderr.

``check``/``sg``/``synth``/``reduce``/``verify`` read astg-style ``.g``
files (see ``repro.petri.parser``), registry spec names (``repro verify
half vme_read``) and parametric family members
(``repro sg fifo_chain_8``, see :mod:`repro.specs.families`); ``verify``
checks the synthesized circuit of every requested reduction strategy
against its specification; ``sg`` and ``synth`` take exploration-budget
knobs (``--max-states``/``--max-arcs``, ``--sg-max-states``/
``--sg-max-arcs``) that bound state-graph generation through one
:class:`repro.explore.ExplorationBudget`; ``check``/``sg``/``synth``
take ``--engine`` to pick the exploration core -- including the symbolic
BDD engine (:mod:`repro.symbolic`), which computes reachable sets and
coding verdicts without enumerating states and is budgeted in allocated
BDD nodes (``--max-nodes``); ``sweep``
runs the built-in benchmark registry through the whole Tables 1-2
design-space grid in parallel; ``serve`` exposes the same flow as a
long-running HTTP service with request deduplication and micro-batching
(:mod:`repro.serve`).  ``synth``, ``verify``, ``sweep`` and ``serve`` all
share one ``--store`` directory (the content-addressed artifact store):
warm runs skip every pipeline stage whose inputs didn't change, and
``cache`` inspects, garbage-collects or clears that store.  ``bench``
runs the unified benchmark registry (:mod:`repro.bench`) into one
versioned ``BENCH_<rev>.json`` and can gate it against a committed
baseline.

``python -m repro.cli --dump-docs`` renders the whole command tree as
markdown; ``docs/cli.md`` is that output, committed (a test keeps it in
sync).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .encoding.csc import irresolvable_conflicts
from .flow import STRATEGIES, run_flow_stg
from .petri.parser import read_stg, write_stg
from .pipeline.store import ArtifactStore
from .reduction.explore import full_reduction, reduce_concurrency
from .sg.generator import generate_sg
from .sg.properties import check_implementability
from .sg.resynthesis import ResynthesisError, resynthesise_stg
from .timing.delays import DelayModel


def _read_spec(spec: str):
    """An STG from a ``.g`` path, a registry name or a family member."""
    from .specs.families import family_names, load_family, parse_family_name
    from .sweep.grid import spec_registry

    if os.path.exists(spec):
        return read_stg(spec)
    try:
        parse_family_name(spec)
    except KeyError:
        pass
    else:
        return load_family(spec)
    registry = spec_registry()
    factory = registry.get(spec)
    if factory is None:
        raise SystemExit(
            f"{spec!r} is neither a .g file, a registry spec "
            f"({sorted(registry)}) nor a family member "
            f"(<kind>_<stages>[_s<seed>] with kind in {family_names()})")
    return factory()


def _generation_budget(args: argparse.Namespace):
    """The ``ExplorationBudget`` requested by ``--max-states/--max-arcs``."""
    from .explore import ExplorationBudget
    from .sg.generator import DEFAULT_MAX_STATES

    max_states = getattr(args, "max_states", None)
    max_arcs = getattr(args, "max_arcs", None)
    if max_states is None and max_arcs is None:
        return None
    return ExplorationBudget(
        max_states=DEFAULT_MAX_STATES if max_states is None else max_states,
        max_arcs=max_arcs)


def _parse_keep(text: Optional[str]) -> List[tuple]:
    if not text:
        return []
    items = [item.strip() for item in text.split(",") if item.strip()]
    if len(items) % 2:
        raise SystemExit("--keep expects a comma list of event pairs, e.g. "
                         "'li-,ri-' or 'li-,ri-,lo-,ro-'")
    return [(items[i], items[i + 1]) for i in range(0, len(items), 2)]


def _print_coding(report) -> None:
    """Shared rendering of a cross-engine coding report."""
    print(f"coding report for {report.name} (engine: {report.engine}):")
    print(f"  states            : {report.states}")
    print(f"  consistent        : {report.consistent}")
    print(f"  USC / CSC         : {report.usc} / {report.csc}")
    print(f"  USC pairs         : {report.usc_pair_count}")
    print(f"  CSC conflicts     : {report.csc_conflict_count}")
    if report.truncated:
        print("  (witness lists above the limit were dropped)")


def cmd_check(args: argparse.Namespace) -> int:
    stg = _read_spec(args.spec)
    if args.engine == "symbolic":
        from .sg.properties import check_coding
        report = check_coding(stg, engine="symbolic")
        _print_coding(report)
        print("  note: commutativity/persistency/deadlock checks need the "
              "explicit engine")
        return 0 if report.consistent and report.csc else 1
    sg = generate_sg(stg, engine=args.engine)
    report = check_implementability(sg)
    print(f"model {stg.name}: {len(sg)} states, {sg.arc_count()} arcs")
    print(f"  consistent        : {report.consistent}")
    print(f"  commutative       : {report.commutative}")
    print(f"  output persistent : {report.output_persistent}")
    print(f"  USC / CSC         : {report.usc} / {report.csc}")
    print(f"  CSC conflicts     : {report.csc_conflict_count}")
    print(f"  deadlock free     : {report.deadlock_free}")
    hopeless = irresolvable_conflicts(sg)
    if hopeless:
        print(f"  note: {len(hopeless)} conflict(s) separated by input events "
              "only (unresolvable by state-signal insertion)")
    return 0 if report.implementable else 1


def _symbolic_sg(args: argparse.Namespace) -> int:
    """``repro sg --engine symbolic``: reach + coding, no enumeration."""
    from .explore import ExplorationBudget
    from .explore.budget import BudgetExceeded
    from .symbolic import SymbolicEncodingError, encode_stg, symbolic_reach
    from .symbolic.csc import check_coding_symbolic

    stg = _read_spec(args.spec)
    budget = None
    if args.max_nodes is not None:
        budget = ExplorationBudget(max_nodes=args.max_nodes)
    try:
        encoding = encode_stg(stg)
        run = symbolic_reach(encoding, budget=budget)
        report = check_coding_symbolic(stg, run=run)
    except BudgetExceeded as exc:
        raise SystemExit(f"{exc.exceedance.diagnose('symbolic reachability')} "
                         "(raise --max-nodes)")
    except SymbolicEncodingError as exc:
        raise SystemExit(str(exc))
    mode = "chained passes" if run.chaining else "BFS levels"
    print(f"symbolic reachability of {stg.name}: {run.state_count} states "
          f"in {run.levels} {mode}")
    print(f"  BDD nodes         : {run.bdd.size(run.reached)} reached set, "
          f"{run.node_count} allocated")
    print(f"  variables         : {len(encoding.place_vars)} places + "
          f"{len(encoding.signal_vars)} signals (+ primed places)")
    _print_coding(report)
    return 0


def cmd_sg(args: argparse.Namespace) -> int:
    from .sg.generator import GenerationBudgetError

    if args.engine == "symbolic":
        if args.dot or args.stubborn:
            raise SystemExit("--engine symbolic computes the state set as a "
                             "BDD; it cannot print states (--dot) or apply "
                             "stubborn-set reduction")
        return _symbolic_sg(args)
    try:
        sg = generate_sg(_read_spec(args.spec),
                         budget=_generation_budget(args),
                         stubborn=args.stubborn,
                         engine=args.engine)
    except GenerationBudgetError as exc:
        raise SystemExit(f"{exc.exceedance.diagnose('state graph')} "
                         "(raise --max-states/--max-arcs)")
    if args.stubborn:
        print(f"# stubborn-set reduction on: {len(sg)} states is a "
              "deadlock-preserving subset of the full state graph")
    if args.dot:
        print(sg.to_dot())
        return 0
    print(f"{len(sg)} states (initial marked with *):")
    for state in sg.states:
        marker = "*" if state == sg.initial else " "
        successors = ", ".join(f"{label}->{sg.code_string(target)}"
                               for label, target in sg.successors(state).items())
        print(f" {marker}{sg.code_string(state):12s} {successors}")
    return 0


def _reduced_sg(args: argparse.Namespace):
    sg = generate_sg(_read_spec(args.spec))
    keep = _parse_keep(getattr(args, "keep", None))
    if getattr(args, "no_reduce", False):
        return sg, sg
    if getattr(args, "full", False):
        return sg, full_reduction(sg, keep_conc=keep)
    result = reduce_concurrency(sg, keep_conc=keep, weight=args.weight)
    return sg, result.best


def cmd_synth(args: argparse.Namespace) -> int:
    # Inserted CSC signals are *internal*: they get their own delay, which
    # defaults to the output delay (the Table 1 convention) but can differ.
    internal = (args.output_delay if args.internal_delay is None
                else args.internal_delay)
    delays = DelayModel.by_kind(args.input_delay, args.output_delay, internal)
    if args.no_reduce:
        strategy = "none"
    elif args.full:
        strategy = "full"
    else:
        strategy = "best-first"
    store = ArtifactStore(args.store) if args.store else None
    # --engine symbolic = symbolic coding pre-flight, explicit synthesis
    # (the netlist needs the materialized state graph); packed/tuples
    # select the marking-exploration core of the generation stage.
    sg_engine = args.engine if args.engine in ("packed", "tuples") else "auto"
    check_engine = "symbolic" if args.engine == "symbolic" else "auto"
    from .sg.generator import GenerationBudgetError
    try:
        flow = run_flow_stg(_read_spec(args.spec), strategy=strategy,
                            keep_conc=_parse_keep(getattr(args, "keep", None)),
                            weight=args.weight, delays=delays,
                            max_csc_signals=args.max_csc,
                            sg_max_states=args.sg_max_states,
                            sg_max_arcs=args.sg_max_arcs,
                            sg_engine=sg_engine, check_engine=check_engine,
                            store=store)
    except GenerationBudgetError as exc:
        raise SystemExit(f"{exc.exceedance.diagnose('state graph')} "
                         "(raise --sg-max-states/--sg-max-arcs)")
    if flow.coding is not None:
        _print_coding(flow.coding)
    report = flow.report
    print(f"states: {len(flow.initial_sg)} -> {len(flow.reduced_sg)} "
          "after reduction")
    print(f"CSC signals inserted: {report.csc_signal_count} "
          f"(resolved: {report.csc_resolved})")
    if report.circuit is not None:
        print(f"area: {report.area}")
        for equation in sorted(report.circuit.equations.values()):
            print(f"  {equation}")
    else:
        print(f"area (lower-bound estimate, CSC unresolved): {report.area}")
    if report.cycle is not None:
        print(f"critical cycle: {report.cycle_time} "
              f"({report.input_event_count} input events)")
    return 0 if report.csc_resolved else 1


def _parse_csv(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [item.strip() for item in text.split(",") if item.strip()]


def cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import ResultStore, render, run_sweep, tables_grid

    if args.jobs < 1:
        raise SystemExit("--jobs must be at least 1")
    from .sweep.grid import TABLE1_DELAY_AXIS

    delays = None
    flags = (args.input_delay, args.output_delay, args.internal_delay)
    if any(flag is not None for flag in flags):
        # Unset components fall back to the canonical Table 1 axis.
        delays = tuple(default if flag is None else flag
                       for flag, default in zip(flags, TABLE1_DELAY_AXIS))
    try:
        weights = [float(w) for w in (_parse_csv(args.weights)
                                      or ["0.0", "0.5", "1.0"])]
        grid = tables_grid(specs=_parse_csv(args.specs),
                           strategies=_parse_csv(args.strategies)
                           or ("none", "beam", "best-first", "full"),
                           weights=weights,
                           frontier=args.frontier,
                           include_keep_variants=not args.no_keep_variants,
                           max_explored=args.max_explored,
                           delays=delays,
                           verify=args.verify,
                           verify_max_states=args.verify_max_states)
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc))
    store = ResultStore(args.store) if args.store else None
    outcome = run_sweep(grid, jobs=args.jobs, store=store)
    text = render(outcome.rows, args.format)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    print(f"{len(outcome.points)} points: {outcome.computed} computed, "
          f"{outcome.cached} cached, {outcome.seconds:.2f}s "
          f"({outcome.points_per_second:.1f} points/s, jobs={outcome.jobs})",
          file=sys.stderr)
    if store is not None:
        print(outcome.stage_summary(), file=sys.stderr)
    return 0


def _load_spec_sg(spec: str):
    """(name, SG) from a ``.g`` path, registry name or family member."""
    stg = _read_spec(spec)
    if os.path.exists(spec):
        return stg.name, generate_sg(stg)
    return spec, generate_sg(stg)


def cmd_verify(args: argparse.Namespace) -> int:
    from .verify import verify_netlist
    from .verify.certificate import skipped_report

    strategies = _parse_csv(args.strategies) or list(STRATEGIES)
    unknown = sorted(set(strategies) - set(STRATEGIES))
    if unknown:
        raise SystemExit(f"unknown strategy(ies) {unknown}; "
                         f"expected a subset of {STRATEGIES}")
    keep = _parse_keep(args.keep)
    store = ArtifactStore(args.store) if args.store else None
    reports = []
    verified = cached_count = failures = skips = 0
    for spec in args.specs:
        name, initial_sg = _load_spec_sg(spec)
        for strategy in strategies:
            label = f"{name}/{strategy}"
            # Through the staged pipeline so --store reuses the reduction,
            # CSC and synthesis artifacts across runs, not just the final
            # certificate.
            implementation = run_flow_stg(
                None, strategy=strategy, keep_conc=keep, weight=args.weight,
                max_csc_signals=args.max_csc, initial_sg=initial_sg,
                name=label, store=store).report
            if implementation.circuit is None:
                report = skipped_report(
                    label, "no synthesized circuit (unresolved CSC or "
                    "toggle specification)", model=args.model)
                cached = False
            else:
                report, cached = verify_netlist(
                    implementation.circuit.netlist,
                    implementation.resolved_sg, model=args.model,
                    max_states=args.max_states, name=label, store=store)
            reports.append(report)
            if report.skipped:
                skips += 1
            elif cached:
                cached_count += 1
            else:
                verified += 1
            if not report.ok and not report.skipped:
                failures += 1
            print(f"{label}: {report.summary()}")
            for line in report.trace_lines():
                print(f"    {line}")
    if args.json:
        payload = {"reports": [report.to_dict() for report in reports]}
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    print(f"{len(reports)} checks: {verified} verified, {cached_count} "
          f"cached, {skips} skipped, {failures} failed", file=sys.stderr)
    if failures:
        return 1
    if args.strict and skips:
        return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.app import ServeApp
    from .serve.http import start_server

    if args.workers < 0:
        raise SystemExit("--workers must be >= 0 (0 = in-process)")

    app = ServeApp(store_root=args.store, workers=args.workers,
                   batch_size=args.batch_size,
                   default_timeout=args.timeout,
                   max_verify_states=args.max_verify_states)

    async def serve() -> None:
        await app.startup()
        server = await start_server(app, args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        print(f"serving on http://{host}:{port} "
              f"(workers={args.workers}, batch={args.batch_size}, "
              f"store={args.store or 'none'})", file=sys.stderr, flush=True)
        try:
            async with server:
                await server.serve_forever()
        finally:
            await app.shutdown()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from . import engine

    # Inspection/maintenance must not conjure stores out of typos
    # (ArtifactStore.__init__ creates its directory).
    if not os.path.isdir(args.store):
        raise SystemExit(f"no such store directory: {args.store}")
    store = ArtifactStore(args.store)
    if args.action == "stats":
        stats = store.stats()
        print(f"store {stats['root']}: {stats['entries']} entries, "
              f"{stats['bytes']} bytes")
        for stage, count in stats["stages"].items():
            print(f"  {stage:12s} {count}")
        memos = engine.cache_stats()
        print(f"engine memo tables (this process): {len(memos)}")
        for name, entries in sorted(memos.items()):
            print(f"  {name:24s} {entries} entries")
        return 0
    if args.action == "gc":
        if args.max_bytes is None:
            raise SystemExit("cache gc requires --max-bytes")
        result = store.gc(args.max_bytes)
        print(f"deleted {result['deleted']} entries "
              f"({result['freed_bytes']} bytes); "
              f"{result['remaining_bytes']} bytes remain")
        return 0
    if args.action == "clear":
        removed = store.clear()
        engine.clear_caches()
        print(f"deleted {removed} entries; engine memo tables cleared")
        return 0
    raise SystemExit(f"unknown cache action {args.action!r}")


def cmd_bench(args: argparse.Namespace) -> int:
    from . import bench

    if args.list:
        for case in bench.all_cases():
            print(f"{case.name:20s} {case.tier:5s} {case.title}")
        return 0
    try:
        cases = bench.select_cases(names=_parse_csv(args.cases),
                                   tier=args.tier)
    except KeyError as exc:
        raise SystemExit(str(exc))

    report = bench.run_cases(cases, quick=args.quick, rounds=args.rounds)
    for skip in bench.skipped_checks(report):
        print(f"check skipped -- {skip}", file=sys.stderr)

    out = args.out or bench.default_bench_name(report["env"])
    with open(out, "wb") as handle:
        handle.write(bench.to_json_bytes(report))
    total = sum(entry["seconds"] for entry in report["cases"].values())
    print(f"wrote {out}: {len(report['cases'])} cases, {total:.1f}s "
          f"(rev {report['env']['git_rev']})", file=sys.stderr)

    failures = bench.failed_checks(report)
    for failure in failures:
        print(f"check FAILED -- {failure}", file=sys.stderr)

    status = 1 if failures else 0
    if args.against:
        with open(args.against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        try:
            comparison = bench.compare(report, baseline,
                                       tolerance=args.tolerance)
        except ValueError as exc:
            raise SystemExit(str(exc))
        print(comparison.to_markdown(), end="")
        if args.verdict:
            with open(args.verdict, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(comparison.to_dict(), indent=2,
                                        sort_keys=True) + "\n")
            print(f"wrote {args.verdict}", file=sys.stderr)
        if not comparison.ok:
            status = 1
    return status


def cmd_trace(args: argparse.Namespace) -> int:
    from .obs.trace import load_trace, render_summary

    if args.action != "summarize":
        raise SystemExit(f"unknown trace action {args.action!r}")
    try:
        payload = load_trace(args.file)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(str(exc))
    print(render_summary(payload), end="")
    return 0


def cmd_reduce(args: argparse.Namespace) -> int:
    initial, reduced = _reduced_sg(args)
    print(f"states: {len(initial)} -> {len(reduced)}", file=sys.stderr)
    try:
        stg = resynthesise_stg(reduced)
    except ResynthesisError as exc:
        print(f"cannot re-derive an STG: {exc}", file=sys.stderr)
        return 1
    text = write_stg(stg)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .specs.generate import GenKnobs, run_fuzz

    knobs = GenKnobs(max_fragments=args.fragments,
                     max_mutations=args.mutations,
                     max_signals=args.max_signals)
    report = run_fuzz(seed=args.seed, count=args.count, knobs=knobs,
                      budget_states=args.budget,
                      jobs_identity_every=args.jobs_identity_every,
                      do_shrink=args.shrink,
                      repro_dir=args.repro_dir)
    # stdout is the deterministic record (byte-identical across runs and
    # PYTHONHASHSEEDs); wall-clock goes to stderr.
    print(f"corpus {report.corpus_digest}")
    print(f"specs {len(report.results)} seed {report.seed} "
          f"states {report.total_states} max {report.max_states}")
    for check, count in sorted(report.check_counts().items()):
        print(f"  {check:12s} {count}")
    print(f"divergences {len(report.divergences)}")
    for divergence, shrunk in zip(report.divergences, report.shrunk):
        print(f"  {divergence.oracle}: {divergence.spec.name} -> "
              f"{shrunk.spec.name} "
              f"({len(shrunk.spec.build().net.transitions)} transitions, "
              f"{shrunk.steps} shrink edits)")
    for divergence in report.divergences[len(report.shrunk):]:
        print(f"  {divergence.oracle}: {divergence.spec.name} (unshrunk)")
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report.manifest(), indent=2,
                                    sort_keys=True) + "\n")
        print(f"wrote {args.manifest}", file=sys.stderr)
    for path in report.repro_paths:
        print(f"wrote {path}", file=sys.stderr)
    rate = len(report.results) / report.seconds if report.seconds else 0.0
    print(f"{report.seconds:.1f}s ({rate:.1f} specs/s)", file=sys.stderr)
    return 1 if report.divergences else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synthesis of partially specified asynchronous systems "
                    "(DAC 1999 reproduction)")
    parser.add_argument("--log-level",
                        choices=("debug", "info", "warning", "error"),
                        default=None,
                        help="structured log level; at info the frontier "
                             "and stage progress heartbeats stream to "
                             "stderr (default: $REPRO_LOG or warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_options(command: argparse.ArgumentParser) -> None:
        command.add_argument("--trace", metavar="PATH",
                             help="record a span trace of this run (pipeline "
                                  "stages, frontier levels) to PATH; purely "
                                  "observational, results are byte-identical "
                                  "with or without it")
        command.add_argument("--trace-format", choices=("json", "chrome"),
                             default="json",
                             help="trace layout: nested JSON tree (for "
                                  "'repro trace summarize') or Chrome "
                                  "trace_event (chrome://tracing, Perfetto)")

    check = sub.add_parser("check", help="implementability report")
    check.add_argument("spec", help=".g specification file")
    check.add_argument("--engine",
                       choices=("auto", "packed", "tuples", "symbolic"),
                       default="auto",
                       help="checking engine: explicit state-graph cores "
                            "(auto/packed/tuples) or the symbolic BDD path "
                            "(coding properties only, no enumeration)")
    check.set_defaults(func=cmd_check)

    sg = sub.add_parser("sg", help="print the state graph")
    sg.add_argument("spec", help=".g specification file")
    sg.add_argument("--dot", action="store_true", help="GraphViz output")
    sg.add_argument("--engine",
                    choices=("auto", "packed", "tuples", "symbolic"),
                    default="auto",
                    help="exploration engine: auto tries the packed core "
                         "and falls back to tuples; symbolic computes the "
                         "reachable set as a BDD and prints a summary plus "
                         "coding verdicts instead of the state listing")
    sg.add_argument("--max-states", type=int, default=None,
                    help="cap on admitted states (default: the generator's "
                    "200000-state budget); exceeding it is a structured "
                    "error, never a truncated graph")
    sg.add_argument("--max-arcs", type=int, default=None,
                    help="cap on traversed arcs (default: unbounded)")
    sg.add_argument("--max-nodes", type=int, default=None,
                    help="cap on allocated BDD nodes (--engine symbolic "
                    "only; exceeding it is the same structured budget "
                    "error)")
    sg.add_argument("--stubborn", action="store_true",
                    help="explore with the deadlock-preserving stubborn-set "
                    "reduction (a subset of the full state graph)")
    add_trace_options(sg)
    sg.set_defaults(func=cmd_sg)

    def add_reduction_options(command: argparse.ArgumentParser) -> None:
        command.add_argument("spec", help=".g specification file")
        command.add_argument("--full", action="store_true",
                             help="reduce until no valid reduction remains")
        command.add_argument("--no-reduce", action="store_true",
                             help="keep maximal concurrency")
        command.add_argument("--keep", metavar="EV1,EV2[,...]",
                             help="event pairs whose concurrency to preserve")
        command.add_argument("-W", "--weight", type=float, default=0.5,
                             help="cost weight: 0 biases CSC, 1 logic size")

    synth = sub.add_parser("synth", help="synthesize a circuit")
    add_reduction_options(synth)
    synth.add_argument("--max-csc", type=int, default=4,
                       help="state-signal insertion budget")
    synth.add_argument("--input-delay", type=float, default=2.0)
    synth.add_argument("--output-delay", type=float, default=1.0)
    synth.add_argument("--internal-delay", type=float, default=None,
                       help="delay of inserted CSC signals "
                            "(default: the output delay)")
    synth.add_argument("--sg-max-states", type=int, default=None,
                       help="state budget for SG generation (default: the "
                       "generator's 200000-state budget)")
    synth.add_argument("--sg-max-arcs", type=int, default=None,
                       help="arc budget for SG generation "
                       "(default: unbounded)")
    synth.add_argument("--engine",
                       choices=("auto", "packed", "tuples", "symbolic"),
                       default="auto",
                       help="packed/tuples select the SG generation core; "
                            "symbolic runs a BDD coding pre-flight (prints "
                            "the verdicts) before the explicit flow")
    synth.add_argument("--store", metavar="DIR",
                       help="artifact store; warm runs reuse every pipeline "
                            "stage whose inputs didn't change")
    add_trace_options(synth)
    synth.set_defaults(func=cmd_synth)

    reduce_cmd = sub.add_parser("reduce",
                                help="reduce concurrency, emit a new .g STG")
    add_reduction_options(reduce_cmd)
    reduce_cmd.add_argument("-o", "--output", help="output .g path")
    reduce_cmd.set_defaults(func=cmd_reduce)

    verify = sub.add_parser(
        "verify",
        help="synthesize and verify circuits against their specifications")
    verify.add_argument("specs", nargs="+",
                        help=".g files or registry spec names")
    verify.add_argument("--strategies", metavar="S[,S...]",
                        help="subset of none,beam,best-first,full "
                             "(default: all)")
    verify.add_argument("--keep", metavar="EV1,EV2[,...]",
                        help="event pairs whose concurrency to preserve")
    verify.add_argument("-W", "--weight", type=float, default=0.5,
                        help="cost weight for the searched strategies")
    verify.add_argument("--max-csc", type=int, default=4,
                        help="state-signal insertion budget")
    verify.add_argument("--model", choices=("atomic", "structural"),
                        default="atomic",
                        help="delay model: atomic complex-gate cones "
                             "(default) or every 2-input gate separately")
    verify.add_argument("--max-states", type=int, default=None,
                        help="product state-space cap (default: "
                             "repro.verify.DEFAULT_MAX_STATES)")
    verify.add_argument("--store", metavar="DIR",
                        help="certificate store; warm runs skip verified "
                             "(netlist, spec) pairs")
    verify.add_argument("--strict", action="store_true",
                        help="treat skipped points (no circuit) as failures")
    verify.add_argument("--json", metavar="PATH",
                        help="write all certificates to a JSON file")
    add_trace_options(verify)
    verify.set_defaults(func=cmd_verify)

    sweep = sub.add_parser("sweep",
                           help="parallel design-space sweep over the "
                                "built-in benchmark grid (Tables 1-2)")
    sweep.add_argument("--specs", metavar="NAME[,NAME...]",
                       help="benchmark subset (default: every registered "
                            "spec; see repro.sweep.spec_registry)")
    sweep.add_argument("--strategies", metavar="S[,S...]",
                       help="subset of none,beam,best-first,full "
                            "(default: all)")
    sweep.add_argument("--weights", metavar="W[,W...]",
                       help="cost weights for the searched strategies "
                            "(default: 0.0,0.5,1.0)")
    sweep.add_argument("--frontier", type=int, default=None,
                       help="beam width override (default: 4, full: 6)")
    sweep.add_argument("--max-explored", type=int, default=None,
                       help="per-point exploration budget override")
    sweep.add_argument("--no-keep-variants", action="store_true",
                       help="skip the named Keep_Conc rows (li || ri, ...)")
    sweep.add_argument("--verify", action="store_true",
                       help="gate-level verify every design point and add "
                            "verdict columns to the report")
    sweep.add_argument("--verify-max-states", type=int, default=None,
                       help="product state-space cap per verification "
                            "(default: repro.verify.DEFAULT_MAX_STATES)")
    sweep.add_argument("--input-delay", type=float, default=None,
                       help="input event delay for every point "
                            "(default: 2, the Table 1 model)")
    sweep.add_argument("--output-delay", type=float, default=None,
                       help="output event delay for every point (default: 1)")
    sweep.add_argument("--internal-delay", type=float, default=None,
                       help="internal/CSC event delay for every point "
                            "(default: 1)")
    sweep.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes (default: 1, serial)")
    sweep.add_argument("--store", metavar="DIR",
                       help="on-disk result store; completed points are "
                            "reused across runs and overlapping grids")
    sweep.add_argument("--format", choices=("md", "csv", "json"),
                       default="md", help="report format (default: md)")
    sweep.add_argument("-o", "--output", help="write the report to a file")
    add_trace_options(sweep)
    sweep.set_defaults(func=cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="run the synthesis service: an async HTTP front end with "
             "request deduplication and micro-batching")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port; 0 picks an ephemeral port "
                            "(default: 8080)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes for the heavy stages; "
                            "0 runs in-process (default: 1)")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="max queued same-spec jobs grouped into one "
                            "worker chunk (default: 8)")
    serve.add_argument("--store", metavar="DIR",
                       help="shared artifact store; without it nothing is "
                            "cached across requests or restarts")
    serve.add_argument("--timeout", type=float, default=None,
                       help="default per-job wall-clock budget in seconds "
                            "(requests may set a smaller one)")
    serve.add_argument("--max-verify-states", type=int, default=None,
                       help="server-wide cap on per-request verification "
                            "state budgets")
    serve.set_defaults(func=cmd_serve)

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain an artifact store (and engine memos)")
    cache.add_argument("action", choices=("stats", "gc", "clear"),
                       help="stats: entries/bytes per stage; gc: delete "
                            "oldest entries over the byte budget; clear: "
                            "delete everything")
    cache.add_argument("store", metavar="DIR", help="store directory")
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="byte budget for gc")
    cache.set_defaults(func=cmd_cache)

    bench = sub.add_parser(
        "bench",
        help="run the unified benchmark registry into a versioned BENCH "
             "file, optionally gated against a baseline")
    bench.add_argument("--cases", metavar="NAME[,NAME...]",
                       help="explicit case subset (overrides --tier; see "
                            "--list)")
    bench.add_argument("--tier", choices=("quick", "full", "all"),
                       default="all",
                       help="run one tier: quick (sub-second, the CI gate) "
                            "or full (multi-second throughput); default: all")
    bench.add_argument("--quick", action="store_true",
                       help="single timing round, no warmup (smoke mode; "
                            "measured metrics are noisy)")
    bench.add_argument("--rounds", type=int, default=3,
                       help="timing rounds per measurement (min-of-N)")
    bench.add_argument("--out", metavar="PATH",
                       help="BENCH report path (default: BENCH_<rev>.json)")
    bench.add_argument("--against", metavar="BASELINE",
                       help="compare against a baseline BENCH file; exits "
                            "non-zero on regressions or missing metrics")
    bench.add_argument("--tolerance", type=float, default=None,
                       help="relative tolerance for gated measured metrics "
                            "(default: 0.5; exact metrics always gate at 0)")
    bench.add_argument("--verdict", metavar="PATH",
                       help="write the machine-readable comparison verdict "
                            "to a JSON file")
    bench.add_argument("--list", action="store_true",
                       help="list registered cases (name, tier, title) and "
                            "exit")
    bench.set_defaults(func=cmd_bench)

    trace = sub.add_parser(
        "trace",
        help="inspect recorded trace files (the --trace output)")
    trace.add_argument("action", choices=("summarize",),
                       help="summarize: aggregate count and wall/self/CPU "
                            "seconds per span name")
    trace.add_argument("file", help="trace file (JSON tree or Chrome "
                                    "trace_event format)")
    trace.set_defaults(func=cmd_trace)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential cross-engine fuzzing over random live-safe "
             "specs, with automatic shrinking of divergences")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="corpus seed; the run is byte-deterministic in "
                           "(seed, count, knobs)")
    fuzz.add_argument("--count", type=int, default=100,
                      help="number of generated specs to check")
    fuzz.add_argument("--fragments", type=int, default=3,
                      help="max handshake fragments composed per spec")
    fuzz.add_argument("--mutations", type=int, default=4,
                      help="max correctness-preserving mutations per spec")
    fuzz.add_argument("--max-signals", type=int, default=12,
                      help="signal budget per generated spec")
    fuzz.add_argument("--budget", type=int, default=50_000,
                      help="per-spec exploration budget (states); "
                           "exceedances must agree across engines")
    fuzz.add_argument("--shrink", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="reduce each divergence to a minimal repro "
                           "spec before reporting")
    fuzz.add_argument("--jobs-identity-every", type=int, default=0,
                      metavar="N",
                      help="byte-compare a spawned-process synth job "
                           "against the in-process one on every N-th "
                           "spec (0: off)")
    fuzz.add_argument("--manifest", metavar="PATH",
                      help="write the JSON corpus manifest (digests plus "
                           "one replayable genspec line per spec)")
    fuzz.add_argument("--repro-dir", metavar="DIR",
                      help="write shrunk divergence repro files here "
                           "(default: none)")
    add_trace_options(fuzz)
    fuzz.set_defaults(func=cmd_fuzz)
    return parser


def _action_rows(parser: argparse.ArgumentParser) -> List[tuple]:
    """(spelling, default, help) rows for every argument of one parser."""
    rows = []
    for action in parser._actions:
        if isinstance(action, (argparse._HelpAction,
                               argparse._SubParsersAction)):
            continue
        if action.option_strings:
            spelling = ", ".join(action.option_strings)
            if action.metavar:
                spelling += f" {action.metavar}"
            elif action.nargs is None and not isinstance(
                    action, (argparse._StoreTrueAction,
                             argparse._StoreFalseAction)):
                spelling += f" {action.dest.upper()}"
        else:
            spelling = action.metavar or action.dest
        # Identity checks: `0 in (None, False, ...)` would be True and
        # hide real zero defaults from the committed reference.
        if (action.default is None or action.default is False
                or action.default is argparse.SUPPRESS):
            default = ""
        else:
            default = f"{action.default}"
        rows.append((spelling, default, action.help or ""))
    return rows


def dump_docs() -> str:
    """Render the whole CLI tree as markdown (the source of docs/cli.md).

    Generated from the live argparse parsers, so the committed file can
    never drift from the code: ``tests/test_docs.py`` re-generates it and
    compares bytes.  Regenerate with::

        PYTHONPATH=src python -m repro.cli --dump-docs > docs/cli.md
    """
    parser = build_parser()
    lines = [
        "# `repro` command-line reference",
        "",
        "<!-- Generated by `python -m repro.cli --dump-docs`; do not edit "
        "by hand. -->",
        "",
        parser.description or "",
        "",
        "Run any command via the installed `repro` script or "
        "`PYTHONPATH=src python -m repro`.",
        "",
    ]
    subactions = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    helps = {choice.dest: choice.help
             for choice in subactions._choices_actions}
    for name, sub in subactions.choices.items():
        lines.append(f"## `repro {name}`")
        lines.append("")
        if helps.get(name):
            help_text = helps[name]
            # Not str.capitalize(): that would lowercase acronyms (HTTP,
            # CSC, ...) in the committed, byte-compared reference.
            lines.append(f"{help_text[:1].upper()}{help_text[1:]}.")
            lines.append("")
        usage = " ".join(sub.format_usage().split())
        lines.append(f"    {usage.replace('usage: ', '')}")
        lines.append("")
        rows = _action_rows(sub)
        if rows:
            lines.append("| argument | default | description |")
            lines.append("| --- | --- | --- |")
            for spelling, default, help_text in rows:
                lines.append(f"| `{spelling}` | {default} | {help_text} |")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _setup_observability(args: argparse.Namespace) -> None:
    """One logging setup + the heartbeat hook, for every subcommand."""
    import logging

    from .obs import progress
    from .obs.logs import logger, setup_logging, structured

    try:
        setup_logging(getattr(args, "log_level", None))
    except ValueError as exc:  # a bad $REPRO_LOG value
        raise SystemExit(str(exc))
    log = logger("repro.progress")
    if log.isEnabledFor(logging.INFO):
        progress.set_heartbeat(
            lambda kind, fields: log.info(structured(kind, fields)))
    else:
        # Embedders (and earlier main() calls in one test process) may
        # have left a hook installed; quiet levels must stay quiet.
        progress.clear_heartbeat()


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "--dump-docs":
        print(dump_docs(), end="")
        return 0
    args = build_parser().parse_args(argv)
    _setup_observability(args)
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.func(args)
    from .obs.trace import TraceRecorder, recording, write_trace

    recorder = TraceRecorder(meta={"command": args.command,
                                   "argv": list(argv)})
    try:
        with recording(recorder):
            return args.func(args)
    finally:
        # Written even when the command exits early (budget exceedance,
        # SystemExit): a partial trace is exactly what you want then.
        write_trace(recorder, trace_path, args.trace_format)
        print(f"wrote trace to {trace_path} ({args.trace_format})",
              file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
