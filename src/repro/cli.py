"""Command-line interface: a petrify-style front end to the flow.

Usage (also via ``python -m repro``)::

    python -m repro check  spec.g              # implementability report
    python -m repro sg     spec.g [--dot]      # print the state graph
    python -m repro synth  spec.g [--full] [--no-reduce] [--keep li-,ri-]
                                   [-W 0.5] [--max-csc 4]
    python -m repro reduce spec.g [-o out.g]   # reduce + re-derive an STG
    python -m repro verify spec.g [--strategies none,full] [--store DIR]
                                   [--model atomic|structural]
    python -m repro sweep  [--specs lr,mmu] [--jobs 4] [--store DIR]
                           [--format md|csv|json] [-o report.md] [--verify]

``check``/``sg``/``synth``/``reduce`` read astg-style ``.g`` files (see
``repro.petri.parser``); ``verify`` additionally accepts registry spec
names (``repro verify half vme_read``) and checks the synthesized circuit
of every requested reduction strategy against its specification; ``sweep``
runs the built-in benchmark registry through the whole Tables 1-2
design-space grid in parallel.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .encoding.csc import irresolvable_conflicts
from .flow import STRATEGIES, implement, reduce_sg
from .petri.parser import read_stg, write_stg
from .reduction.explore import full_reduction, reduce_concurrency
from .sg.generator import generate_sg
from .sg.properties import check_implementability
from .sg.resynthesis import ResynthesisError, resynthesise_stg
from .timing.delays import DelayModel


def _parse_keep(text: Optional[str]) -> List[tuple]:
    if not text:
        return []
    items = [item.strip() for item in text.split(",") if item.strip()]
    if len(items) % 2:
        raise SystemExit("--keep expects a comma list of event pairs, e.g. "
                         "'li-,ri-' or 'li-,ri-,lo-,ro-'")
    return [(items[i], items[i + 1]) for i in range(0, len(items), 2)]


def cmd_check(args: argparse.Namespace) -> int:
    stg = read_stg(args.spec)
    sg = generate_sg(stg)
    report = check_implementability(sg)
    print(f"model {stg.name}: {len(sg)} states, {sg.arc_count()} arcs")
    print(f"  consistent        : {report.consistent}")
    print(f"  commutative       : {report.commutative}")
    print(f"  output persistent : {report.output_persistent}")
    print(f"  USC / CSC         : {report.usc} / {report.csc}")
    print(f"  CSC conflicts     : {report.csc_conflict_count}")
    print(f"  deadlock free     : {report.deadlock_free}")
    hopeless = irresolvable_conflicts(sg)
    if hopeless:
        print(f"  note: {len(hopeless)} conflict(s) separated by input events "
              "only (unresolvable by state-signal insertion)")
    return 0 if report.implementable else 1


def cmd_sg(args: argparse.Namespace) -> int:
    sg = generate_sg(read_stg(args.spec))
    if args.dot:
        print(sg.to_dot())
        return 0
    print(f"{len(sg)} states (initial marked with *):")
    for state in sg.states:
        marker = "*" if state == sg.initial else " "
        successors = ", ".join(f"{label}->{sg.code_string(target)}"
                               for label, target in sg.successors(state).items())
        print(f" {marker}{sg.code_string(state):12s} {successors}")
    return 0


def _reduced_sg(args: argparse.Namespace):
    sg = generate_sg(read_stg(args.spec))
    keep = _parse_keep(getattr(args, "keep", None))
    if getattr(args, "no_reduce", False):
        return sg, sg
    if getattr(args, "full", False):
        return sg, full_reduction(sg, keep_conc=keep)
    result = reduce_concurrency(sg, keep_conc=keep, weight=args.weight)
    return sg, result.best


def cmd_synth(args: argparse.Namespace) -> int:
    initial, reduced = _reduced_sg(args)
    # Inserted CSC signals are *internal*: they get their own delay, which
    # defaults to the output delay (the Table 1 convention) but can differ.
    internal = (args.output_delay if args.internal_delay is None
                else args.internal_delay)
    delays = DelayModel.by_kind(args.input_delay, args.output_delay, internal)
    report = implement(reduced, delays=delays, max_csc_signals=args.max_csc)
    print(f"states: {len(initial)} -> {len(reduced)} after reduction")
    print(f"CSC signals inserted: {report.csc_signal_count} "
          f"(resolved: {report.csc_resolved})")
    if report.circuit is not None:
        print(f"area: {report.area}")
        for equation in sorted(report.circuit.equations.values()):
            print(f"  {equation}")
    else:
        print(f"area (lower-bound estimate, CSC unresolved): {report.area}")
    if report.cycle is not None:
        print(f"critical cycle: {report.cycle_time} "
              f"({report.input_event_count} input events)")
    return 0 if report.csc_resolved else 1


def _parse_csv(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [item.strip() for item in text.split(",") if item.strip()]


def cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import ResultStore, render, run_sweep, tables_grid

    if args.jobs < 1:
        raise SystemExit("--jobs must be at least 1")
    try:
        weights = [float(w) for w in (_parse_csv(args.weights)
                                      or ["0.0", "0.5", "1.0"])]
        grid = tables_grid(specs=_parse_csv(args.specs),
                           strategies=_parse_csv(args.strategies)
                           or ("none", "beam", "best-first", "full"),
                           weights=weights,
                           frontier=args.frontier,
                           include_keep_variants=not args.no_keep_variants,
                           max_explored=args.max_explored,
                           verify=args.verify)
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc))
    store = ResultStore(args.store) if args.store else None
    outcome = run_sweep(grid, jobs=args.jobs, store=store)
    text = render(outcome.rows, args.format)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    print(f"{len(outcome.points)} points: {outcome.computed} computed, "
          f"{outcome.cached} cached, {outcome.seconds:.2f}s "
          f"({outcome.points_per_second:.1f} points/s, jobs={outcome.jobs})",
          file=sys.stderr)
    return 0


def _load_spec_sg(spec: str):
    """(name, SG) from a ``.g`` path or a sweep-registry spec name."""
    from .sweep.grid import spec_registry

    if os.path.exists(spec):
        stg = read_stg(spec)
        return stg.name, generate_sg(stg)
    registry = spec_registry()
    factory = registry.get(spec)
    if factory is None:
        raise SystemExit(f"{spec!r} is neither a .g file nor a registry "
                         f"spec; available: {sorted(registry)}")
    return spec, generate_sg(factory())


def cmd_verify(args: argparse.Namespace) -> int:
    from .sweep.store import ResultStore
    from .verify import verify_netlist
    from .verify.certificate import skipped_report

    strategies = _parse_csv(args.strategies) or list(STRATEGIES)
    unknown = sorted(set(strategies) - set(STRATEGIES))
    if unknown:
        raise SystemExit(f"unknown strategy(ies) {unknown}; "
                         f"expected a subset of {STRATEGIES}")
    keep = _parse_keep(args.keep)
    store = ResultStore(args.store) if args.store else None
    reports = []
    verified = cached_count = failures = skips = 0
    for spec in args.specs:
        name, initial_sg = _load_spec_sg(spec)
        for strategy in strategies:
            label = f"{name}/{strategy}"
            chosen, _, _ = reduce_sg(initial_sg, strategy=strategy,
                                     keep_conc=keep, weight=args.weight)
            implementation = implement(chosen, name=label,
                                       max_csc_signals=args.max_csc)
            if implementation.circuit is None:
                report = skipped_report(
                    label, "no synthesized circuit (unresolved CSC or "
                    "toggle specification)", model=args.model)
                cached = False
            else:
                report, cached = verify_netlist(
                    implementation.circuit.netlist,
                    implementation.resolved_sg, model=args.model,
                    max_states=args.max_states, name=label, store=store)
            reports.append(report)
            if report.skipped:
                skips += 1
            elif cached:
                cached_count += 1
            else:
                verified += 1
            if not report.ok and not report.skipped:
                failures += 1
            print(f"{label}: {report.summary()}")
            for line in report.trace_lines():
                print(f"    {line}")
    if args.json:
        payload = {"reports": [report.to_dict() for report in reports]}
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    print(f"{len(reports)} checks: {verified} verified, {cached_count} "
          f"cached, {skips} skipped, {failures} failed", file=sys.stderr)
    if failures:
        return 1
    if args.strict and skips:
        return 1
    return 0


def cmd_reduce(args: argparse.Namespace) -> int:
    initial, reduced = _reduced_sg(args)
    print(f"states: {len(initial)} -> {len(reduced)}", file=sys.stderr)
    try:
        stg = resynthesise_stg(reduced)
    except ResynthesisError as exc:
        print(f"cannot re-derive an STG: {exc}", file=sys.stderr)
        return 1
    text = write_stg(stg)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Synthesis of partially specified asynchronous systems "
                    "(DAC 1999 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="implementability report")
    check.add_argument("spec")
    check.set_defaults(func=cmd_check)

    sg = sub.add_parser("sg", help="print the state graph")
    sg.add_argument("spec")
    sg.add_argument("--dot", action="store_true", help="GraphViz output")
    sg.set_defaults(func=cmd_sg)

    def add_reduction_options(command: argparse.ArgumentParser) -> None:
        command.add_argument("spec")
        command.add_argument("--full", action="store_true",
                             help="reduce until no valid reduction remains")
        command.add_argument("--no-reduce", action="store_true",
                             help="keep maximal concurrency")
        command.add_argument("--keep", metavar="EV1,EV2[,...]",
                             help="event pairs whose concurrency to preserve")
        command.add_argument("-W", "--weight", type=float, default=0.5,
                             help="cost weight: 0 biases CSC, 1 logic size")

    synth = sub.add_parser("synth", help="synthesize a circuit")
    add_reduction_options(synth)
    synth.add_argument("--max-csc", type=int, default=4,
                       help="state-signal insertion budget")
    synth.add_argument("--input-delay", type=float, default=2.0)
    synth.add_argument("--output-delay", type=float, default=1.0)
    synth.add_argument("--internal-delay", type=float, default=None,
                       help="delay of inserted CSC signals "
                            "(default: the output delay)")
    synth.set_defaults(func=cmd_synth)

    reduce_cmd = sub.add_parser("reduce",
                                help="reduce concurrency, emit a new .g STG")
    add_reduction_options(reduce_cmd)
    reduce_cmd.add_argument("-o", "--output", help="output .g path")
    reduce_cmd.set_defaults(func=cmd_reduce)

    verify = sub.add_parser(
        "verify",
        help="synthesize and verify circuits against their specifications")
    verify.add_argument("specs", nargs="+",
                        help=".g files or registry spec names")
    verify.add_argument("--strategies", metavar="S[,S...]",
                        help="subset of none,beam,best-first,full "
                             "(default: all)")
    verify.add_argument("--keep", metavar="EV1,EV2[,...]",
                        help="event pairs whose concurrency to preserve")
    verify.add_argument("-W", "--weight", type=float, default=0.5,
                        help="cost weight for the searched strategies")
    verify.add_argument("--max-csc", type=int, default=4,
                        help="state-signal insertion budget")
    verify.add_argument("--model", choices=("atomic", "structural"),
                        default="atomic",
                        help="delay model: atomic complex-gate cones "
                             "(default) or every 2-input gate separately")
    verify.add_argument("--max-states", type=int, default=None,
                        help="product state-space cap (default: "
                             "repro.verify.DEFAULT_MAX_STATES)")
    verify.add_argument("--store", metavar="DIR",
                        help="certificate store; warm runs skip verified "
                             "(netlist, spec) pairs")
    verify.add_argument("--strict", action="store_true",
                        help="treat skipped points (no circuit) as failures")
    verify.add_argument("--json", metavar="PATH",
                        help="write all certificates to a JSON file")
    verify.set_defaults(func=cmd_verify)

    sweep = sub.add_parser("sweep",
                           help="parallel design-space sweep over the "
                                "built-in benchmark grid (Tables 1-2)")
    sweep.add_argument("--specs", metavar="NAME[,NAME...]",
                       help="benchmark subset (default: every registered "
                            "spec; see repro.sweep.spec_registry)")
    sweep.add_argument("--strategies", metavar="S[,S...]",
                       help="subset of none,beam,best-first,full "
                            "(default: all)")
    sweep.add_argument("--weights", metavar="W[,W...]",
                       help="cost weights for the searched strategies "
                            "(default: 0.0,0.5,1.0)")
    sweep.add_argument("--frontier", type=int, default=None,
                       help="beam width override (default: 4, full: 6)")
    sweep.add_argument("--max-explored", type=int, default=None,
                       help="per-point exploration budget override")
    sweep.add_argument("--no-keep-variants", action="store_true",
                       help="skip the named Keep_Conc rows (li || ri, ...)")
    sweep.add_argument("--verify", action="store_true",
                       help="gate-level verify every design point and add "
                            "verdict columns to the report")
    sweep.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes (default: 1, serial)")
    sweep.add_argument("--store", metavar="DIR",
                       help="on-disk result store; completed points are "
                            "reused across runs and overlapping grids")
    sweep.add_argument("--format", choices=("md", "csv", "json"),
                       default="md", help="report format (default: md)")
    sweep.add_argument("-o", "--output", help="write the report to a file")
    sweep.set_defaults(func=cmd_sweep)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
