"""A process-local metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds named series -- a metric name plus a
sorted label set identifies one series, Prometheus-style::

    registry.counter("repro_stage_computed_total", stage="generate").inc()
    registry.gauge("repro_queue_depth").set(4)
    registry.histogram("repro_queue_wait_seconds").observe(0.03)

Two renderings: :meth:`~MetricsRegistry.snapshot` is a sorted-key JSON
dict (deterministic modulo the observed values, for ``/stats`` and
tests), and :meth:`~MetricsRegistry.render_prometheus` is the Prometheus
text exposition format (version 0.0.4), served by ``GET /metrics``.

The module-level :func:`registry` is the default instance the
instrumented layers (frontier engine, pipeline stages) write to; the
serving layer builds its own per-:class:`~repro.serve.jobs.JobManager`
registry so concurrent servers in one process never mix series.  Like
tracing, metrics are pure observation: nothing reads a metric back to
make a decision, so results are byte-identical whether or not anyone
ever scrapes them.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "registry", "reset_registry"]

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   30.0, 60.0)

Labels = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, in-flight count)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``;
    observations above the last bound only land in ``+Inf`` (the total
    ``count``).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.bounds: Tuple[float, ...] = tuple(buckets)
        self.bucket_counts: List[int] = [0] * len(self.bounds)
        self.count: int = 0
        self.sum: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1


def _labels(labels: Dict[str, str]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


def _series_name(name: str, labels: Labels,
                 extra: Labels = ()) -> str:
    merged = tuple(sorted(labels + extra))
    if not merged:
        return name
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in merged)
    return f"{name}{{{inner}}}"


def _render_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """All series of one process (or one server), by (name, labels).

    Thread-safe for the cheap paths (a lock guards series creation; the
    value updates themselves are single bytecode ops on ints/floats).
    A metric name is bound to one type and one help string at first use;
    reusing it as a different type raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._types: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._series: Dict[Tuple[str, Labels], Any] = {}

    # ------------------------------------------------------------------
    # series accessors
    # ------------------------------------------------------------------
    def _get(self, kind: str, factory, name: str, help_text: str,
             labels: Dict[str, str]):
        key = (name, _labels(labels))
        series = self._series.get(key)
        if series is not None and self._types.get(name) == kind:
            return series
        with self._lock:
            bound = self._types.setdefault(name, kind)
            if bound != kind:
                raise ValueError(
                    f"metric {name!r} is already a {bound}, not a {kind}")
            series = self._series.get(key)
            if series is None:
                if help_text:
                    self._help.setdefault(name, help_text)
                series = self._series[key] = factory()
            return series

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        """The counter series for ``name`` + ``labels`` (created once)."""
        return self._get("counter", Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge series for ``name`` + ``labels`` (created once)."""
        return self._get("gauge", Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        """The histogram series for ``name`` + ``labels`` (created once)."""
        return self._get("histogram", lambda: Histogram(buckets), name,
                         help, labels)

    def value(self, name: str, **labels: str) -> Optional[float]:
        """The current value of a counter/gauge series, if it exists."""
        series = self._series.get((name, _labels(labels)))
        return None if series is None else series.value

    # ------------------------------------------------------------------
    # renderings
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain sorted dict of every series, JSON-ready.

        Counter/gauge series map flat rendered names to values;
        histogram series map to ``{"count", "sum", "buckets"}`` dicts.
        """
        out: Dict[str, Any] = {}
        for (name, labels), series in sorted(self._series.items()):
            flat = _series_name(name, labels)
            if isinstance(series, Histogram):
                out[flat] = {
                    "count": series.count,
                    "sum": round(series.sum, 9),
                    "buckets": {_render_value(bound): count
                                for bound, count in zip(
                                    series.bounds, series.bucket_counts)},
                }
            else:
                out[flat] = series.value
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition (format version 0.0.4)."""
        by_name: Dict[str, List[Tuple[Labels, Any]]] = {}
        for (name, labels), series in sorted(self._series.items()):
            by_name.setdefault(name, []).append((labels, series))
        lines: List[str] = []
        for name in sorted(by_name):
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape(help_text)}")
            lines.append(f"# TYPE {name} {self._types[name]}")
            for labels, series in by_name[name]:
                if isinstance(series, Histogram):
                    cumulative = 0
                    for bound, count in zip(series.bounds,
                                            series.bucket_counts):
                        cumulative = count
                        label = (("le", _render_value(bound)),)
                        lines.append(
                            f"{_series_name(name + '_bucket', labels, label)}"
                            f" {cumulative}")
                    label = (("le", "+Inf"),)
                    lines.append(
                        f"{_series_name(name + '_bucket', labels, label)}"
                        f" {series.count}")
                    lines.append(f"{_series_name(name + '_sum', labels)} "
                                 f"{_render_value(series.sum)}")
                    lines.append(f"{_series_name(name + '_count', labels)} "
                                 f"{series.count}")
                else:
                    lines.append(f"{_series_name(name, labels)} "
                                 f"{_render_value(series.value)}")
        return "\n".join(lines) + ("\n" if lines else "")


#: The default (process-local) registry the instrumented layers write to.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-default registry (frontier + pipeline metrics)."""
    return _DEFAULT


def reset_registry() -> MetricsRegistry:
    """Replace the default registry with a fresh one (tests, benchmarks)."""
    global _DEFAULT
    _DEFAULT = MetricsRegistry()
    return _DEFAULT
