"""The observability spine: tracing spans, metrics, progress, logging.

Stdlib-only and strictly *observational*: every layer of the flow
(frontier engine, pipeline stages, serving, benchmarks) reports where
its time and states went through this package, and none of it ever feeds
back into a computation -- artifacts, certificates, bench canonical
payloads and serve job results are byte-identical with observability on
or off (pinned by ``tests/test_obs.py``).

Four parts:

* :mod:`repro.obs.trace` -- nested span tracing; JSON tree and Chrome
  ``trace_event`` renderings.
* :mod:`repro.obs.metrics` -- counters/gauges/histograms with JSON
  snapshots and Prometheus text exposition.
* :mod:`repro.obs.progress` -- throttled live heartbeats (per BFS level,
  per pipeline stage).
* :mod:`repro.obs.logs` -- the one structured-logging setup behind
  ``repro --log-level`` / ``$REPRO_LOG``.

See ``docs/observability.md`` for naming schemes and how to read a
pipeline trace.
"""

from .logs import LOG_ENV, logger, setup_logging, structured
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry, registry,
                      reset_registry)
from .progress import (Heartbeat, active, clear_heartbeat, emit,
                       set_heartbeat)
from .trace import (Span, TraceRecorder, current, load_trace, recording,
                    render_summary, span, summarize, write_trace)

__all__ = [
    "Counter",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "LOG_ENV",
    "MetricsRegistry",
    "Span",
    "TraceRecorder",
    "active",
    "clear_heartbeat",
    "current",
    "emit",
    "load_trace",
    "logger",
    "recording",
    "registry",
    "render_summary",
    "reset_registry",
    "set_heartbeat",
    "setup_logging",
    "span",
    "structured",
    "summarize",
    "write_trace",
]
