"""Nested span tracing: one recorder per run, spans per stage and level.

A :class:`TraceRecorder` collects a tree of :class:`Span` records --
name, sorted attributes, monotonic wall and CPU timings -- and renders it
two ways: :meth:`~TraceRecorder.to_tree`, a deterministic JSON tree
(sorted keys; the structure and attribute values are byte-stable across
runs, only the timing fields vary), and :meth:`~TraceRecorder.to_chrome`,
the Chrome ``trace_event`` format loadable in ``chrome://tracing`` and
Perfetto.

Instrumentation points never hold a recorder: they call the module-level
:func:`span` context manager, which resolves the *active* recorder from a
:class:`contextvars.ContextVar` and is a no-op (zero allocation beyond
the context manager) when none is installed.  That is the heart of the
observability invariant: with no recorder installed, the instrumented
code paths compute exactly what they always computed -- tracing observes
results, it never participates in them.  Install a recorder with
:func:`recording`::

    recorder = TraceRecorder(meta={"command": "synth"})
    with recording(recorder):
        run_pipeline(...)
    write_trace(recorder, "out.json", "chrome")

Span names are namespaced ``layer:detail`` (``pipeline``,
``stage:generate``, ``frontier:level``, ``job``, ``case:table1``); the
Chrome ``cat`` field is the prefix before the colon.  See
``docs/observability.md`` for the naming scheme.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "TraceRecorder", "TRACE_SCHEMA", "current", "recording",
           "span", "load_trace", "summarize", "render_summary",
           "write_trace"]

#: Version of the JSON trace-tree layout.
TRACE_SCHEMA = 1

_ACTIVE: ContextVar[Optional["TraceRecorder"]] = ContextVar(
    "repro-trace-recorder", default=None)


class Span:
    """One timed region: name, attributes, wall/CPU duration, children.

    ``start`` is seconds since the recorder's epoch (monotonic);
    ``wall``/``cpu`` are filled when the region exits.  ``set`` attaches
    attributes after entry -- stages use it to record the digest/cache
    outcome they only know at the end.
    """

    __slots__ = ("name", "attrs", "start", "start_cpu", "wall", "cpu",
                 "children")

    def __init__(self, name: str, attrs: Dict[str, Any],
                 start: float, start_cpu: float) -> None:
        self.name = name
        self.attrs = attrs
        self.start = start
        self.start_cpu = start_cpu
        self.wall: float = 0.0
        self.cpu: float = 0.0
        self.children: List["Span"] = []

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on an open or closed span."""
        self.attrs.update(attrs)

    def to_node(self) -> Dict[str, Any]:
        """The JSON-tree rendering of this span (and its subtree)."""
        node: Dict[str, Any] = {
            "name": self.name,
            "start_s": round(self.start, 6),
            "wall_s": round(self.wall, 6),
            "cpu_s": round(self.cpu, 6),
        }
        if self.attrs:
            node["attrs"] = dict(sorted(self.attrs.items()))
        if self.children:
            node["children"] = [child.to_node() for child in self.children]
        return node


class TraceRecorder:
    """Collects one run's span tree.

    The recorder owns the epoch (both clocks are read once at
    construction) and a stack of open spans; :meth:`span` nests under the
    innermost open span, so the tree mirrors the dynamic call structure.
    Recorders are cheap and single-threaded by design -- one per run (a
    CLI invocation, a serve job, a bench case), never shared.
    """

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.meta: Dict[str, Any] = dict(meta or {})
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._epoch = time.perf_counter()
        self._epoch_cpu = time.process_time()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; closes (and times) it on exit."""
        record = Span(name, attrs,
                      time.perf_counter() - self._epoch,
                      time.process_time() - self._epoch_cpu)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent is not None else self.roots).append(record)
        self._stack.append(record)
        try:
            yield record
        finally:
            record.wall = (time.perf_counter() - self._epoch) - record.start
            record.cpu = ((time.process_time() - self._epoch_cpu)
                          - record.start_cpu)
            self._stack.pop()

    # ------------------------------------------------------------------
    # renderings
    # ------------------------------------------------------------------
    def to_tree(self) -> Dict[str, Any]:
        """The deterministic JSON tree (sorted keys when serialized)."""
        return {
            "trace_schema": TRACE_SCHEMA,
            "meta": dict(sorted(self.meta.items())),
            "spans": [root.to_node() for root in self.roots],
        }

    def to_chrome(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` JSON (complete ``"X"`` events).

        Timestamps are microseconds since the recorder epoch; ``cat`` is
        the span-name prefix before the colon, so Perfetto can filter by
        layer.  Load via ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        pid = os.getpid()
        events: List[Dict[str, Any]] = []

        def emit(record: Span) -> None:
            events.append({
                "name": record.name,
                "cat": record.name.split(":", 1)[0],
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.wall * 1e6, 3),
                "pid": pid,
                "tid": 1,
                "args": dict(sorted(record.attrs.items())),
            })
            for child in record.children:
                emit(child)

        for root in self.roots:
            emit(root)
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": dict(sorted(self.meta.items()))}


# ----------------------------------------------------------------------
# the active recorder
# ----------------------------------------------------------------------
def current() -> Optional[TraceRecorder]:
    """The recorder installed in this context, if any."""
    return _ACTIVE.get()


@contextmanager
def recording(recorder: TraceRecorder) -> Iterator[TraceRecorder]:
    """Install ``recorder`` as the active recorder for the block."""
    token = _ACTIVE.set(recorder)
    try:
        yield recorder
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """A span on the active recorder -- or a no-op when none is active.

    Instrumented code treats the yielded value as optional::

        with span("stage:generate") as sp:
            ...
            if sp is not None:
                sp.set(digest=digest, cached=False)
    """
    recorder = _ACTIVE.get()
    if recorder is None:
        yield None
        return
    with recorder.span(name, **attrs) as record:
        yield record


# ----------------------------------------------------------------------
# files and summaries
# ----------------------------------------------------------------------
def write_trace(recorder: TraceRecorder, path: str,
                fmt: str = "json") -> None:
    """Serialize a recorder to ``path`` as ``json`` (tree) or ``chrome``."""
    if fmt == "json":
        payload = recorder.to_tree()
    elif fmt == "chrome":
        payload = recorder.to_chrome()
    else:
        raise ValueError(f"unknown trace format {fmt!r}; "
                         "expected 'json' or 'chrome'")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_trace(path: str) -> Dict[str, Any]:
    """Load a trace file (either format) as its parsed JSON payload."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or (
            "spans" not in payload and "traceEvents" not in payload):
        raise ValueError(f"{path} is not a repro trace "
                         "(no 'spans' tree, no 'traceEvents' list)")
    return payload


def summarize(payload: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """Aggregate a trace by span name.

    Returns ``{name: {count, wall_s, self_s, cpu_s}}``; ``self_s`` is
    wall time not covered by child spans (tree input only -- Chrome
    input has no nesting, so ``self_s`` equals ``wall_s`` there).
    """
    totals: Dict[str, Dict[str, float]] = {}

    def bucket(name: str) -> Dict[str, float]:
        return totals.setdefault(name, {"count": 0, "wall_s": 0.0,
                                        "self_s": 0.0, "cpu_s": 0.0})

    if "spans" in payload:
        def walk(node: Dict[str, Any]) -> None:
            entry = bucket(node["name"])
            children = node.get("children", [])
            entry["count"] += 1
            entry["wall_s"] += node["wall_s"]
            entry["cpu_s"] += node.get("cpu_s", 0.0)
            entry["self_s"] += max(
                0.0, node["wall_s"] - sum(child["wall_s"]
                                          for child in children))
            for child in children:
                walk(child)

        for root in payload["spans"]:
            walk(root)
    else:
        for event in payload["traceEvents"]:
            if event.get("ph") != "X":
                continue
            entry = bucket(event["name"])
            seconds = event.get("dur", 0.0) / 1e6
            entry["count"] += 1
            entry["wall_s"] += seconds
            entry["self_s"] += seconds
            entry["cpu_s"] += 0.0
    return totals


def render_summary(payload: Dict[str, Any]) -> str:
    """A deterministic text table of :func:`summarize`, for the CLI."""
    totals = summarize(payload)
    header = f"{'span':32s} {'count':>7s} {'wall s':>10s} " \
             f"{'self s':>10s} {'cpu s':>10s}"
    lines = [header, "-" * len(header)]
    ordered = sorted(totals.items(),
                     key=lambda item: (-item[1]["wall_s"], item[0]))
    for name, entry in ordered:
        lines.append(f"{name:32s} {int(entry['count']):7d} "
                     f"{entry['wall_s']:10.4f} {entry['self_s']:10.4f} "
                     f"{entry['cpu_s']:10.4f}")
    return "\n".join(lines) + "\n"
