"""Throttled live-progress heartbeats.

Long explorations are black boxes without this: a 177k-state frontier
walk gives no sign of life until it returns.  The frontier engines and
the pipeline stages call :func:`emit` at natural boundaries (one BFS
level, one stage start/finish/reuse); when a hook is installed (the CLI
wires one into the structured logger, see :mod:`repro.obs.logs`), the
event reaches it -- throttled per event kind so a thousand fast levels
cost one clock read each, not a thousand log lines.

Like the rest of the observability spine this is pure observation: with
no hook installed :func:`emit` is one ``None`` check, and a hook can
never change a result -- it only watches.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

__all__ = ["Heartbeat", "active", "clear_heartbeat", "emit",
           "set_heartbeat"]

Hook = Callable[[str, Dict[str, Any]], None]

#: Default minimum interval between delivered events of one kind.
DEFAULT_INTERVAL = 0.5


class Heartbeat:
    """One installed hook plus its per-kind throttle state.

    ``min_interval`` is the floor between two delivered events of the
    same kind; ``force=True`` events (stage boundaries, final level of a
    run) always pass.  ``clock`` is injectable for tests.
    """

    def __init__(self, hook: Hook,
                 min_interval: float = DEFAULT_INTERVAL,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.hook = hook
        self.min_interval = min_interval
        self.clock = clock
        self._last: Dict[str, float] = {}

    def emit(self, kind: str, fields: Dict[str, Any],
             force: bool = False) -> bool:
        """Deliver one event unless throttled; True when delivered."""
        now = self.clock()
        if not force:
            last = self._last.get(kind)
            if last is not None and now - last < self.min_interval:
                return False
        self._last[kind] = now
        self.hook(kind, fields)
        return True


_HEARTBEAT: Optional[Heartbeat] = None


def set_heartbeat(hook: Hook,
                  min_interval: float = DEFAULT_INTERVAL,
                  clock: Callable[[], float] = time.monotonic) -> Heartbeat:
    """Install ``hook`` as the process heartbeat; returns the wrapper."""
    global _HEARTBEAT
    _HEARTBEAT = Heartbeat(hook, min_interval=min_interval, clock=clock)
    return _HEARTBEAT


def clear_heartbeat() -> None:
    """Remove the installed hook (emit becomes a no-op again)."""
    global _HEARTBEAT
    _HEARTBEAT = None


def active() -> bool:
    """Whether any hook is installed (lets callers skip field building)."""
    return _HEARTBEAT is not None


def emit(kind: str, fields: Dict[str, Any], force: bool = False) -> bool:
    """Send one event to the installed hook; False when dropped/absent."""
    heartbeat = _HEARTBEAT
    if heartbeat is None:
        return False
    return heartbeat.emit(kind, fields, force=force)
