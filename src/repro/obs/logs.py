"""One structured-logging setup for every entry point.

Before this module each entry point configured logging (or didn't) its
own way; now ``repro --log-level`` and the ``REPRO_LOG`` environment
variable both funnel into :func:`setup_logging`, which configures the
``repro`` logger hierarchy once with a line-oriented ``key=value``
format::

    2026-08-07T12:00:00 INFO repro.serve request method=POST path=/synth \
        status=202 seconds=0.003 job=9f86d081e5c1

:func:`structured` renders the ``event key=value ...`` message part;
field order is insertion order (callers put the identifying fields
first), values with spaces are quoted.  The heartbeat hook
(:mod:`repro.obs.progress`) is wired into the same logger by the CLI, so
``repro --log-level info synth big_spec.g`` streams frontier progress
lines without any extra flag.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Any, Optional

__all__ = ["LOG_ENV", "logger", "setup_logging", "structured"]

#: Environment variable consulted when no ``--log-level`` is given.
LOG_ENV = "REPRO_LOG"

_LEVELS = {"debug": logging.DEBUG, "info": logging.INFO,
           "warning": logging.WARNING, "error": logging.ERROR}

_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"
_DATE_FORMAT = "%Y-%m-%dT%H:%M:%S"


def structured(event: str, fields: Optional[dict] = None,
               **extra: Any) -> str:
    """Render ``event key=value ...`` with deterministic field order.

    Fields come either as a dict (no name restrictions -- a field may be
    called ``event`` or ``fields``) or as keyword arguments; the dict
    form wins on key collisions.
    """
    merged: dict = dict(extra)
    if fields:
        merged.update(fields)
    parts = [event]
    for key, value in merged.items():
        if isinstance(value, float):
            text = f"{value:.6g}"
        else:
            text = str(value)
        if " " in text or text == "":
            text = '"' + text.replace('"', '\\"') + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


def logger(name: str = "repro") -> logging.Logger:
    """The ``repro`` logger (or a child such as ``repro.serve``)."""
    return logging.getLogger(name)


def setup_logging(level: Optional[str] = None,
                  stream=None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy once; returns the root.

    ``level`` falls back to ``$REPRO_LOG`` and then ``warning``.
    Idempotent: a second call replaces the handler (so tests and
    long-lived embedders can re-point the stream) instead of stacking
    duplicates.  The logger does not propagate, so embedding
    applications keep their own root logger untouched.
    """
    name = (level or os.environ.get(LOG_ENV) or "warning").lower()
    if name not in _LEVELS:
        raise ValueError(f"unknown log level {name!r}; "
                         f"expected one of {sorted(_LEVELS)}")
    root = logging.getLogger("repro")
    root.setLevel(_LEVELS[name])
    root.propagate = False
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
    for existing in list(root.handlers):
        root.removeHandler(existing)
    root.addHandler(handler)
    return root
