"""Worker-side task execution (runs inside the pool processes).

:func:`execute_chunk` is the one function the service ever submits to its
executor: it takes a spec-coherent chunk of ``(job id, task)`` items,
opens the shared artifact store, and evaluates each task through the
staged pipeline.  Chunks are grouped by :func:`~repro.serve.protocol
.task_group`, so consecutive tasks in one chunk hit the same worker-side
caches (the decoded state graph, the engine memos) the way a sweep chunk
does -- that is the micro-batching amortization.

Task failures are *data*, not exceptions: a task that raises comes back as
a ``("failed", message)`` result so one bad request can never poison the
rest of its chunk or kill the worker.

Each task runs under its own :class:`~repro.obs.trace.TraceRecorder` (the
manager asks for traces with ``trace=True``); the span tree travels back
beside the result, tagged with the job digest, and is served by
``GET /jobs/<id>/trace``.  Tracing is pure observation -- the ``result``
element is byte-identical with tracing on or off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.trace import TraceRecorder, recording
from ..pipeline.config import FlowConfig
from ..pipeline.jobs import run_synth_job_with_status
from ..pipeline.store import ArtifactStore
from ..sweep.runner import evaluate_with_status
from .protocol import point_from_task

__all__ = ["execute_chunk", "run_task"]

#: Statuses a worker can report for one task.
_DONE = "done"
_FAILED = "failed"


def run_task(task: Dict[str, object],
             store: Optional[ArtifactStore]
             ) -> Tuple[Dict[str, object], Dict[str, str]]:
    """Evaluate one task; returns ``(result payload, stage status)``.

    ``synth`` tasks run :func:`repro.pipeline.jobs.run_synth_job_with_status`
    over their ``.g`` text; ``point`` tasks run the sweep's own
    :func:`repro.sweep.runner.evaluate_with_status`, so a service row is
    byte-identical to the CLI sweep row for the same point.
    """
    kind = task["kind"]
    if kind == "synth":
        config = FlowConfig.from_payload(task["config"])
        return run_synth_job_with_status(config, task["stg"],
                                         name=task["name"], store=store)
    if kind == "point":
        row, status = evaluate_with_status(point_from_task(task), store)
        return {"row": row}, status
    raise ValueError(f"unknown task kind {kind!r}")


def execute_chunk(store_root: Optional[str],
                  chunk: List[Tuple[str, Dict[str, object]]],
                  trace: bool = False) -> List[Tuple[str, str, object,
                                                     Optional[Dict[str, str]],
                                                     Optional[Dict[str,
                                                                   object]]]]:
    """Evaluate one chunk of ``(job id, task)`` items in this process.

    Returns ``(job id, status, payload-or-error, stage status, trace)``
    per item; ``trace`` is the job's span tree when tracing was requested
    (``None`` otherwise, and on failures).  The store handle is rebuilt
    per call (directory-backed stores are cheap and process-safe), so the
    same function serves the in-process executor and every pool start
    method, ``spawn`` included.
    """
    store = None if store_root is None else ArtifactStore(store_root)
    results: List[Tuple[str, str, object, Optional[Dict[str, str]],
                        Optional[Dict[str, object]]]] = []
    for job, task in chunk:
        recorder = (TraceRecorder(meta={"job": job,
                                        "kind": str(task["kind"])})
                    if trace else None)
        try:
            if recorder is not None:
                with recording(recorder), recorder.span("job", job=job,
                                                        kind=task["kind"]):
                    payload, stages = run_task(task, store)
            else:
                payload, stages = run_task(task, store)
            tree = None if recorder is None else recorder.to_tree()
            results.append((job, _DONE, payload, stages, tree))
        except Exception as exc:  # noqa: BLE001 - failures travel as data
            results.append((job, _FAILED,
                            f"{type(exc).__name__}: {exc}", None, None))
    return results
