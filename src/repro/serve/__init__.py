"""Synthesis-as-a-service: an async batched HTTP front end to the flow.

The staged pipeline (PR 4) made every evaluation content-addressed and
resumable; this package turns that substrate into a long-running service.
One ``repro serve`` process accepts concurrent synthesis and sweep
requests over HTTP, deduplicates identical work in flight (one
computation, many waiters), serves repeats from the shared
:class:`~repro.pipeline.ArtifactStore`, micro-batches queued points into
spec-coherent chunks so worker caches amortize, and runs the heavy stages
in a bounded process pool -- the event loop never computes.

Layering (transport-down):

* :mod:`.http`   -- minimal stdlib asyncio HTTP/1.1 + ``BackgroundServer``;
* :mod:`.app`    -- routes, request policy, deterministic JSON rendering;
* :mod:`.jobs`   -- registry, dedup, fair FIFO queue, micro-batcher,
  bounded executor, per-job budgets;
* :mod:`.protocol` -- canonical tasks and content-addressed job ids;
* :mod:`.tasks`  -- worker-side chunk execution over the staged pipeline.

Quickstart::

    $ repro serve --port 8080 --store .serve-store --workers 2 &
    $ curl -s -X POST localhost:8080/synth \\
        -d '{"spec": "half", "config": {"verify": true}, "wait": true}'

See ``docs/architecture.md`` (service layer) and the README serving
quickstart.
"""

from .app import ServeApp, json_bytes
from .http import BackgroundServer, start_server
from .jobs import JOB_STATUSES, Job, JobManager
from .protocol import (SERVE_SCHEMA, ProtocolError, job_id,
                       parse_sweep_request, parse_synth_request,
                       point_from_task, point_task, sweep_task, task_group)
from .tasks import execute_chunk, run_task

__all__ = [
    "ServeApp", "json_bytes",
    "BackgroundServer", "start_server",
    "JOB_STATUSES", "Job", "JobManager",
    "SERVE_SCHEMA", "ProtocolError", "job_id", "parse_sweep_request",
    "parse_synth_request", "point_from_task", "point_task", "sweep_task",
    "task_group",
    "execute_chunk", "run_task",
]
