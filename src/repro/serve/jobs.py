"""Async job manager: dedup, fair queue, micro-batching, bounded workers.

The manager is the single-threaded (asyncio) brain of the service; heavy
work never runs on the event loop.  Its life cycle per request:

1. **Dedup.**  A job's id is the content digest of its canonical task
   (:func:`~repro.serve.protocol.job_id`).  Submitting a task whose id is
   already known returns the existing job: concurrent identical requests
   share one in-flight computation, and repeated requests are served from
   the finished-job history without touching the queue at all (the
   artifact store additionally makes a *restarted* server warm).

2. **Fair queue.**  New jobs join a FIFO ``pending`` deque -- arrival
   order, no priorities, so no client can starve another.

3. **Micro-batching.**  The dispatcher drains the queued backlog and
   partitions it with the sweep's own chunker
   (:func:`repro.sweep.runner.make_chunks`), keyed by the task's
   affinity group (same spec / same ``.g`` text,
   :func:`~repro.serve.protocol.task_group`) and capped at
   ``batch_size`` jobs per chunk.  Each chunk runs as one executor
   call, so worker-side SG and memo caches amortize across the batch
   exactly like a sweep chunk.

4. **Bounded execution.**  At most ``workers`` chunks are in flight; the
   executor is a ``ProcessPoolExecutor`` (or an in-process thread when
   ``workers == 0``, for tests and debugging).  Per-job wall-clock budgets
   are enforced by deadline watchdogs: an expired job fails with a
   ``timeout`` error and its late result, if any, is discarded on arrival
   (the store still absorbs the artifacts, so the work is not wasted).

Everything observable about a *finished* job (``result``) is
deterministic; scheduling artifacts (stage cache provenance, timings,
counters) live on ``stages`` and the stats surface, never inside results.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..obs.logs import logger, structured
from ..obs.metrics import MetricsRegistry
from ..sweep.report import COLUMNS
from ..sweep.runner import make_chunks
from .protocol import job_id, sweep_task, task_group

__all__ = ["Job", "JobManager", "JOB_STATUSES"]

#: Job life cycle: ``queued -> running -> done | failed``.
JOB_STATUSES = ("queued", "running", "done", "failed")

#: Finished jobs kept in the in-memory history (oldest evicted first).
HISTORY_LIMIT = 4096


@dataclass
class Job:
    """One unit of requested work, addressed by its content digest."""

    id: str
    kind: str
    task: Dict[str, object]
    group: str
    status: str = "queued"
    result: Optional[Dict[str, object]] = None
    stages: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    #: The worker-side span tree (``GET /jobs/<id>/trace``), when the
    #: manager runs with tracing on.  Observation only: never part of
    #: ``result``.
    trace: Optional[Dict[str, object]] = None
    #: Monotonic stamps for queue accounting (run-dependent by design).
    submitted: float = 0.0
    queue_wait: Optional[float] = None
    #: Child job ids (sweep parents only), in grid order.
    children: List[str] = field(default_factory=list)
    #: Set once the job reaches a terminal status.
    done: asyncio.Event = field(default_factory=asyncio.Event)
    #: Watchdog handle for the per-job budget, if any.
    _deadline: Optional[asyncio.TimerHandle] = field(default=None, repr=False)

    @property
    def finished(self) -> bool:
        """True in a terminal status (``done`` or ``failed``)."""
        return self.status in ("done", "failed")

    def view(self) -> Dict[str, object]:
        """The JSON shape of this job as clients see it.

        ``result`` is deterministic for a given task; ``stages`` is cache
        provenance (run-dependent by design) and ``error`` is only set on
        failures.
        """
        return {
            "job": self.id,
            "kind": self.kind,
            "status": self.status,
            "result": self.result,
            "stages": self.stages,
            "error": self.error,
        }


class JobManager:
    """Owns the job registry, the queue, the batcher and the executor."""

    def __init__(self,
                 store_root: Optional[str] = None,
                 workers: int = 1,
                 batch_size: int = 8,
                 default_timeout: Optional[float] = None,
                 trace: bool = True) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process)")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.store_root = store_root
        self.workers = workers
        self.batch_size = batch_size
        self.default_timeout = default_timeout
        self.trace = trace
        #: Per-manager registry (never the process default): two servers
        #: in one process must not mix series.  Served by ``/metrics``.
        self.metrics = MetricsRegistry()
        self._log = logger("repro.serve")
        self.jobs: Dict[str, Job] = {}
        self.pending: Deque[str] = deque()
        self.stats: Dict[str, object] = {
            "submitted": 0, "dedup_hits": 0, "tasks_executed": 0,
            "tasks_failed": 0, "timeouts": 0, "chunks": 0,
            "late_results_discarded": 0,
            "stage_computed": {}, "stage_reused": {},
        }
        self._wakeup = asyncio.Event()
        self._slots = asyncio.Semaphore(max(1, workers))
        self._executor: Optional[concurrent.futures.Executor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._chunk_tasks: set = set()
        self._started = time.monotonic()
        self._running = False

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Create the executor and the dispatcher loop."""
        if self._running:
            return
        if self.workers == 0:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve")
        else:
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers)
        self._running = True
        self._started = time.monotonic()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop dispatching and shut the executor down without waiting."""
        if not self._running:
            return
        self._running = False
        self._wakeup.set()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for task in list(self._chunk_tasks):
            task.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, task: Dict[str, object],
               timeout: Optional[float] = None) -> Tuple[Job, bool]:
        """Register a task; returns ``(job, created)``.

        ``created`` is ``False`` when an identical task is already known
        (in flight or finished) -- the dedup path.  A previously *failed*
        identical task is retried with a fresh job.
        """
        jid = job_id(task)
        existing = self.jobs.get(jid)
        if existing is not None and existing.status != "failed":
            self.stats["dedup_hits"] += 1
            self.metrics.counter("repro_jobs_dedup_total",
                                 "Submissions served by dedup.").inc()
            return existing, False
        job = Job(id=jid, kind=str(task["kind"]), task=task,
                  group=task_group(task), submitted=time.monotonic())
        self.metrics.counter("repro_jobs_submitted_total",
                             "Jobs accepted into the queue.",
                             kind=job.kind).inc()
        self.jobs[jid] = job
        self.stats["submitted"] += 1
        self._evict_history()
        budget = self.default_timeout if timeout is None else timeout
        if budget is not None and budget > 0:
            loop = asyncio.get_running_loop()
            job._deadline = loop.call_later(budget, self._expire, jid, budget)
        self.pending.append(jid)
        self._wakeup.set()
        return job, True

    def submit_sweep(self, points, point_tasks,
                     timeout: Optional[float] = None) -> Tuple[Job, bool]:
        """Register a sweep: one child job per point plus a merge parent.

        Children go through :meth:`submit` individually, so points shared
        with earlier sweeps (or still in flight for another client)
        deduplicate at point granularity.  The parent never enters the
        queue; a watcher coroutine assembles the rows in grid order once
        every child reaches a terminal status.
        """
        children = []
        for task in point_tasks:
            child, _ = self.submit(task, timeout=timeout)
            children.append(child)
        parent_task = sweep_task([child.id for child in children])
        jid = job_id(parent_task)
        existing = self.jobs.get(jid)
        if existing is not None and existing.status != "failed":
            self.stats["dedup_hits"] += 1
            return existing, False
        parent = Job(id=jid, kind="sweep", task=parent_task, group="sweep",
                     status="running",
                     children=[child.id for child in children])
        self.jobs[jid] = parent
        self.stats["submitted"] += 1
        budget = self.default_timeout if timeout is None else timeout
        if budget is not None and budget > 0:
            loop = asyncio.get_running_loop()
            parent._deadline = loop.call_later(budget, self._expire, jid,
                                               budget)
        # Hold the child Job objects (dedup'd historical children may be
        # evicted from the registry while we wait) and a strong reference
        # to the watcher task (the loop only keeps weak ones).
        watcher = asyncio.create_task(self._watch_sweep(parent, children))
        self._chunk_tasks.add(watcher)
        watcher.add_done_callback(self._chunk_tasks.discard)
        return parent, True

    async def _watch_sweep(self, parent: Job, children: List[Job]) -> None:
        for child in children:
            await child.done.wait()
        if parent.finished:  # expired while waiting
            return
        failed = [child for child in children if child.status == "failed"]
        if failed:
            reasons = "; ".join(f"{child.id[:12]}: {child.error}"
                                for child in failed[:3])
            self._finish(parent.id, "failed",
                         f"{len(failed)} of {len(children)} points failed "
                         f"({reasons})", None)
            return
        rows = [child.result["row"] for child in children]
        computed: Dict[str, int] = {}
        reused: Dict[str, int] = {}
        for child in children:
            for stage, state in (child.stages or {}).items():
                counts = reused if state == "cached" else computed
                counts[stage] = counts.get(stage, 0) + 1
        self._finish(parent.id, "done",
                     {"columns": list(COLUMNS), "rows": rows},
                     {"computed": computed, "reused": reused})

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _drain_queued(self) -> List[Job]:
        """Pop every still-queued job off the pending deque, de-duplicated.

        A job id can sit in the deque twice (a task that timed out while
        queued and was then resubmitted under the same content digest);
        the ``seen`` set guarantees each job joins at most one chunk.
        """
        seen: set = set()
        backlog: List[Job] = []
        while self.pending:
            jid = self.pending.popleft()
            job = self.jobs.get(jid)
            if job is None or job.status != "queued" or jid in seen:
                continue
            seen.add(jid)
            backlog.append(job)
        return backlog

    def _chunk_backlog(self, backlog: List[Job]) -> List[List[Job]]:
        """Partition a drained backlog into affinity-coherent chunks.

        Reuses the sweep's partitioner (:func:`repro.sweep.runner
        .make_chunks`): jobs with the same affinity group (same spec /
        same ``.g`` text) land in contiguous chunks of at most
        ``batch_size``, so worker-side caches amortize across a chunk
        exactly like a sweep chunk.
        """
        items = list(enumerate(backlog))
        chunks = make_chunks(items, jobs=max(1, self.workers),
                             chunk_size=self.batch_size,
                             group_key=lambda job: job.group)
        return [[job for _, job in chunk] for chunk in chunks]

    async def _dispatch_loop(self) -> None:
        ready: Deque[List[Job]] = deque()
        while self._running:
            await self._wakeup.wait()
            self._wakeup.clear()
            while (self.pending or ready) and self._running:
                if not ready:
                    backlog = self._drain_queued()
                    if not backlog:
                        break
                    ready.extend(self._chunk_backlog(backlog))
                    continue
                await self._slots.acquire()
                chunk = [job for job in ready.popleft()
                         if job.status == "queued"]
                if not chunk:
                    self._slots.release()
                    continue
                now = time.monotonic()
                wait_hist = self.metrics.histogram(
                    "repro_queue_wait_seconds",
                    "Seconds jobs spent queued before dispatch.")
                for job in chunk:
                    job.status = "running"
                    job.queue_wait = round(now - job.submitted, 6)
                    wait_hist.observe(job.queue_wait)
                self.stats["chunks"] += 1
                task = asyncio.create_task(self._run_chunk(chunk))
                self._chunk_tasks.add(task)
                task.add_done_callback(self._chunk_tasks.discard)

    async def _run_chunk(self, chunk: List[Job]) -> None:
        payload = [(job.id, job.task) for job in chunk]
        loop = asyncio.get_running_loop()
        try:
            from .tasks import execute_chunk
            results = await loop.run_in_executor(
                self._executor, execute_chunk, self.store_root, payload,
                self.trace)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # pool died, broken pipe, ...
            for job in chunk:
                self._finish(job.id, "failed",
                             f"executor failure: {type(exc).__name__}: {exc}",
                             None)
            return
        finally:
            self._slots.release()
            self._wakeup.set()
        for jid, status, result, stages, trace in results:
            if status == "done":
                self._finish(jid, "done", result, stages, trace)
            else:
                self.stats["tasks_failed"] += 1
                self._finish(jid, "failed", result, None)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------
    def _finish(self, jid: str, status: str, payload, stages,
                trace=None) -> None:
        job = self.jobs.get(jid)
        if job is None:
            return
        if job.finished:  # expired earlier; discard the late result
            self.stats["late_results_discarded"] += 1
            return
        job.status = status
        if status == "done":
            job.result = payload
            job.stages = stages
            if trace is not None:
                job.trace = trace
            if job.kind != "sweep":
                self.stats["tasks_executed"] += 1
                for stage, state in (stages or {}).items():
                    counts = (self.stats["stage_reused"] if state == "cached"
                              else self.stats["stage_computed"])
                    counts[stage] = counts.get(stage, 0) + 1
                    outcome = "reused" if state == "cached" else "computed"
                    self.metrics.counter(
                        f"repro_stage_{outcome}_total",
                        f"Pipeline stages {outcome} by served jobs.",
                        stage=stage).inc()
        else:
            job.error = str(payload)
        self.metrics.counter("repro_jobs_finished_total",
                             "Jobs that reached a terminal status.",
                             kind=job.kind, status=status).inc()
        if self._log.isEnabledFor(20):  # logging.INFO
            fields = {"job": jid[:12], "kind": job.kind, "status": status}
            if job.queue_wait is not None:
                fields["queue_wait"] = job.queue_wait
            if status == "failed":
                fields["error"] = job.error
            self._log.info(structured("job", fields))
        if job._deadline is not None:
            job._deadline.cancel()
            job._deadline = None
        job.done.set()

    def _expire(self, jid: str, budget: float) -> None:
        job = self.jobs.get(jid)
        if job is None or job.finished:
            return
        self.stats["timeouts"] += 1
        self._finish(jid, "failed", f"timeout after {budget:g}s", None)

    def _evict_history(self) -> None:
        if len(self.jobs) <= HISTORY_LIMIT:
            return
        for jid in list(self.jobs):
            if len(self.jobs) <= HISTORY_LIMIT:
                break
            job = self.jobs[jid]
            if job.finished:
                del self.jobs[jid]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def get(self, jid: str) -> Optional[Job]:
        """The job registered under ``jid``, if any."""
        return self.jobs.get(jid)

    def in_flight(self) -> int:
        """Jobs currently executing (sweep parents excluded)."""
        return sum(1 for job in self.jobs.values()
                   if job.status == "running" and job.kind != "sweep")

    def refresh_gauges(self) -> None:
        """Bring the live-state gauges current (scrape/stats time)."""
        self.metrics.gauge("repro_queue_depth",
                           "Jobs waiting in the queue.").set(
                               len(self.pending))
        self.metrics.gauge("repro_jobs_in_flight",
                           "Jobs currently executing.").set(self.in_flight())

    def snapshot(self) -> Dict[str, object]:
        """Run-dependent counters for the ``/stats`` surface."""
        by_status = {status: 0 for status in JOB_STATUSES}
        for job in self.jobs.values():
            by_status[job.status] += 1
        self.refresh_gauges()
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "workers": self.workers,
            "batch_size": self.batch_size,
            "queue_depth": len(self.pending),
            "in_flight": self.in_flight(),
            "jobs": by_status,
            "metrics": self.metrics.snapshot(),
            **{key: value for key, value in self.stats.items()},
        }
