"""The service application: routes, request policy, JSON rendering.

:class:`ServeApp` is transport-agnostic -- :meth:`dispatch` maps
``(method, path, body)`` to ``(HTTP status, JSON payload)`` without ever
touching a socket, so tests and embedders can drive the full service
in-process; :mod:`repro.serve.http` is the thin asyncio socket layer over
it.

Routes::

    POST /synth              one design point (.g text or registry spec)
    POST /sweep              a whole grid, fanned into point jobs
    GET  /jobs/<id>          job status / result / cache provenance
    GET  /jobs/<id>/trace    the job's span tree (worker-side trace)
    GET  /artifacts/<digest> any stored artifact, by content digest
    GET  /healthz            liveness
    GET  /stats              counters, queue depth, store stats
    GET  /metrics            Prometheus text exposition (the one
                             non-JSON response)

``POST`` bodies may set ``"wait": true`` to block (bounded by the
request's ``timeout`` budget) until the job finishes -- handy for scripts
and benchmarks; the default is fire-and-poll, which is what a service
under heavy traffic wants.

Response bodies are rendered with sorted keys and no timestamps, so the
``result`` of a finished job is **byte-identical** for a given task no
matter which worker count, request interleaving or store temperature
produced it (``stages`` and ``/stats`` are run-dependent by design).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

from .. import __version__
from ..obs.logs import logger, structured
from ..pipeline.store import ArtifactStore
from .jobs import JobManager
from .protocol import (ProtocolError, parse_sweep_request,
                       parse_synth_request, point_task)

__all__ = ["ServeApp", "json_bytes"]

#: Upper bound on request bodies (a whole .g spec is a few KB).
MAX_BODY_BYTES = 4 * 1024 * 1024


def json_bytes(payload: Dict[str, object]) -> bytes:
    """Deterministic JSON rendering: sorted keys, compact, newline-ended."""
    return (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


class ServeApp:
    """Synthesis-as-a-service over one shared artifact store."""

    def __init__(self,
                 store_root: Optional[str] = None,
                 workers: int = 1,
                 batch_size: int = 8,
                 default_timeout: Optional[float] = None,
                 max_verify_states: Optional[int] = None) -> None:
        self.store = (None if store_root is None
                      else ArtifactStore(store_root))
        self.manager = JobManager(
            store_root=None if store_root is None else str(store_root),
            workers=workers, batch_size=batch_size,
            default_timeout=default_timeout)
        self.max_verify_states = max_verify_states
        self.requests: Dict[str, int] = {}
        self._log = logger("repro.serve")

    # ------------------------------------------------------------------
    # life cycle
    # ------------------------------------------------------------------
    async def startup(self) -> None:
        """Start the job manager (must run inside the serving loop)."""
        await self.manager.start()

    async def shutdown(self) -> None:
        """Stop dispatching and release the worker pool."""
        await self.manager.stop()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    #: The bounded per-route counter keys; anything else counts as
    #: "other" so probing traffic cannot grow the stats dict.
    _ROUTES = ("GET /healthz", "GET /stats", "GET /metrics", "GET /jobs",
               "GET /artifacts", "POST /synth", "POST /sweep")

    async def dispatch(self, method: str, path: str,
                       body: bytes = b"") -> Tuple[int, object]:
        """Route one request; returns ``(status, payload)``.

        The payload is a JSON-ready dict on every route except
        ``GET /metrics``, whose payload is the Prometheus text (a str).
        """
        head = path.split("/", 2)[1] if "/" in path else path
        route = f"{method} /{head}"
        if route not in self._ROUTES:
            route = "other"
        self.requests[route] = self.requests.get(route, 0) + 1
        self.manager.metrics.counter("repro_requests_total",
                                     "HTTP requests by route.",
                                     route=route).inc()
        started = time.perf_counter()
        try:
            status, payload = await self._route(method, path, body)
        except ProtocolError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the service must answer
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._log_request(method, path, status, payload,
                          time.perf_counter() - started)
        return status, payload

    def _log_request(self, method: str, path: str, status: int,
                     payload, seconds: float) -> None:
        """One structured line per request (job digest + queue wait)."""
        if not self._log.isEnabledFor(20):  # logging.INFO
            return
        fields: Dict[str, object] = {"method": method, "path": path,
                                     "status": status,
                                     "seconds": round(seconds, 6)}
        if isinstance(payload, dict) and "job" in payload:
            fields["job"] = str(payload["job"])[:12]
            job = self.manager.get(str(payload["job"]))
            if job is not None and job.queue_wait is not None:
                fields["queue_wait"] = job.queue_wait
        self._log.info(structured("request", fields))

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, object]:
        if method == "GET":
            if path == "/healthz":
                return 200, {"status": "ok", "version": __version__}
            if path == "/stats":
                return 200, await self._stats()
            if path == "/metrics":
                self.manager.refresh_gauges()
                return 200, self.manager.metrics.render_prometheus()
            if path.startswith("/jobs/"):
                rest = path[len("/jobs/"):]
                if rest.endswith("/trace"):
                    return self._job_trace(rest[:-len("/trace")])
                return self._job_view(rest)
            if path.startswith("/artifacts/"):
                return await self._artifact(path[len("/artifacts/"):])
        elif method == "POST":
            payload = self._json_body(body)
            if path == "/synth":
                return await self._synth(payload)
            if path == "/sweep":
                return await self._sweep(payload)
        else:
            return 405, {"error": f"method {method} not allowed"}
        return 404, {"error": f"no route {method} {path}"}

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    @staticmethod
    def _json_body(body: bytes):
        if len(body) > MAX_BODY_BYTES:
            raise ProtocolError("request body too large", status=413)
        if not body:
            raise ProtocolError("a JSON request body is required")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"invalid JSON body: {exc}") from None

    @staticmethod
    def _budget(payload) -> Tuple[bool, Optional[float]]:
        wait = bool(payload.get("wait", False))
        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise ProtocolError("'timeout' must be a number of seconds") \
                    from None
            if timeout <= 0:
                raise ProtocolError("'timeout' must be positive")
        return wait, timeout

    async def _synth(self, payload) -> Tuple[int, Dict[str, object]]:
        wait, timeout = self._budget(payload)
        task = parse_synth_request(payload, self.max_verify_states)
        job, _ = self.manager.submit(task, timeout=timeout)
        if wait:
            await self._await_job(job, timeout)
        return (200 if job.finished else 202), job.view()

    async def _sweep(self, payload) -> Tuple[int, Dict[str, object]]:
        wait, timeout = self._budget(payload)
        grid = parse_sweep_request(payload, self.max_verify_states)
        points = grid.points
        job, _ = self.manager.submit_sweep(
            points, [point_task(point) for point in points], timeout=timeout)
        if wait:
            await self._await_job(job, timeout)
        view = job.view()
        view["points"] = len(points)
        return (200 if job.finished else 202), view

    @staticmethod
    async def _await_job(job, timeout: Optional[float]) -> None:
        try:
            # The watchdog fails the job at its own deadline; the extra
            # slack here only covers scheduling latency.
            await asyncio.wait_for(job.done.wait(),
                                   None if timeout is None else timeout + 5.0)
        except asyncio.TimeoutError:
            pass

    def _job_view(self, jid: str) -> Tuple[int, Dict[str, object]]:
        job = self.manager.get(jid)
        if job is None:
            return 404, {"error": f"unknown job {jid!r}"}
        return (200 if job.finished else 202), job.view()

    def _job_trace(self, jid: str) -> Tuple[int, Dict[str, object]]:
        job = self.manager.get(jid)
        if job is None:
            return 404, {"error": f"unknown job {jid!r}"}
        if job.trace is None:
            return 404, {"error": f"no trace for job {jid!r} "
                                  "(not finished, failed, or the manager "
                                  "runs with tracing off)"}
        return 200, {"job": job.id, "trace": job.trace}

    async def _artifact(self, digest: str) -> Tuple[int, Dict[str, object]]:
        if self.store is None:
            return 404, {"error": "this server runs without a store"}
        # A miss scans not-yet-indexed store entries: off the event loop.
        loop = asyncio.get_running_loop()
        entry = await loop.run_in_executor(None, self.store.entry_by_digest,
                                           digest)
        if entry is None:
            return 404, {"error": f"no artifact with digest {digest!r}"}
        return 200, {"digest": entry["digest"], "stage": entry["stage"],
                     "payload": entry["payload"]}

    async def _stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = self.manager.snapshot()
        stats["requests"] = dict(sorted(self.requests.items()))
        if self.store is None:
            stats["store"] = None
        else:
            # stats() reads every entry in the store directory: off-loop.
            loop = asyncio.get_running_loop()
            stats["store"] = await loop.run_in_executor(None,
                                                        self.store.stats)
        return stats
