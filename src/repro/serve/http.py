"""Minimal asyncio HTTP/1.1 transport over :class:`~repro.serve.app.ServeApp`.

Just enough HTTP for a JSON API, on the standard library alone: request
line + headers + ``Content-Length`` bodies, keep-alive by default,
``Connection: close`` honoured, bounded header/body sizes.  No chunked
transfer, no TLS, no compression -- put a reverse proxy in front for
those; this layer's job is to keep the event loop honest (all parsing is
incremental reads with limits) and hand everything else to
:meth:`ServeApp.dispatch`.

:class:`BackgroundServer` runs the whole service (loop, app, sockets) in
a daemon thread -- the embedding surface used by the tests, the
benchmarks and ``examples/serve_client.py`` to exercise the real network
stack without a subprocess.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .app import MAX_BODY_BYTES, ServeApp, json_bytes

__all__ = ["BackgroundServer", "start_server"]

#: Upper bound on the request line plus headers.
MAX_HEADER_BYTES = 32 * 1024

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 408: "Request Timeout",
            413: "Payload Too Large", 500: "Internal Server Error"}


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request; returns ``(method, path, headers, body)`` or
    ``None`` on a cleanly closed connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests
        raise ValueError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise ValueError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise ValueError(f"malformed request line {lines[0]!r}") from None
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValueError("request body too large")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


def _response_bytes(status: int, body: bytes, keep_alive: bool,
                    content_type: str = "application/json") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n")
    return head.encode("latin-1") + body


async def _handle_connection(app: ServeApp,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except ValueError as exc:
                writer.write(_response_bytes(
                    400, json_bytes({"error": str(exc)}), keep_alive=False))
                await writer.drain()
                break
            if request is None:
                break
            method, path, headers, body = request
            status, payload = await app.dispatch(method, path, body)
            keep_alive = headers.get("connection", "keep-alive") != "close"
            if isinstance(payload, str):  # GET /metrics: Prometheus text
                response = payload.encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                response = json_bytes(payload)
                content_type = "application/json"
            writer.write(_response_bytes(status, response, keep_alive,
                                         content_type))
            await writer.drain()
            if not keep_alive:
                break
    except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def start_server(app: ServeApp, host: str = "127.0.0.1",
                       port: int = 0) -> asyncio.AbstractServer:
    """Bind the listening socket; ``port=0`` picks an ephemeral port."""

    async def handler(reader, writer):
        await _handle_connection(app, reader, writer)

    return await asyncio.start_server(handler, host, port,
                                      limit=MAX_HEADER_BYTES)


class BackgroundServer:
    """A full service (loop + app + socket) in a daemon thread.

    Usage::

        with BackgroundServer(store_root=".serve-store", workers=1) as server:
            urllib.request.urlopen(f"http://127.0.0.1:{server.port}/healthz")

    ``port`` is the bound ephemeral port once :meth:`start` returns; the
    context manager stops the loop and the worker pool on exit.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 **app_kwargs) -> None:
        self.app = ServeApp(**app_kwargs)
        self.host = host
        self.port: Optional[int] = port or None
        self._requested_port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._boot_error: Optional[BaseException] = None

    def start(self) -> "BackgroundServer":
        """Start the thread; returns once the socket is bound."""
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._boot_error is not None:
            raise RuntimeError("server failed to start") from self._boot_error
        if self.port is None:
            raise RuntimeError("server did not bind within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server: Optional[asyncio.AbstractServer] = None
        try:
            async def boot():
                await self.app.startup()
                return await start_server(self.app, self.host,
                                          self._requested_port)

            server = loop.run_until_complete(boot())
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            loop.run_forever()
        except BaseException as exc:  # surface boot failures to start()
            self._boot_error = exc
            self._ready.set()
        finally:
            async def teardown():
                if server is not None:
                    server.close()
                    await server.wait_closed()
                await self.app.shutdown()

            try:
                loop.run_until_complete(teardown())
            finally:
                loop.close()

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.stop()
