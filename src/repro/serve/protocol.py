"""Request/task protocol of the synthesis service.

Every request the service accepts is normalized here into a **task**: a
canonical, pure-JSON payload whose SHA-256 digest is the job id.  Identity
is therefore content-based -- two clients posting the same specification
and configuration (however spelled: registry name vs. inline ``.g`` text,
reordered ``keep_conc`` pairs, ``0.5`` vs ``1/2`` delays) produce the same
job id, which is what lets the job manager deduplicate concurrent
identical requests into one computation and serve repeats from history.

Task kinds:

* ``synth`` -- one design point over raw ``.g`` text and a full
  :class:`~repro.pipeline.FlowConfig` payload;
* ``point`` -- one sweep grid point (a serialized
  :class:`~repro.sweep.SweepPoint`), evaluated through the very same
  function the CLI sweep uses;
* ``sweep`` -- a parent task naming its child point-task job ids in grid
  order; it owns no computation of its own, only the merge.

``ProtocolError`` carries an HTTP status so the app layer can translate
validation failures into 4xx responses without string matching.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..pipeline.config import FlowConfig, canonical_keep
from ..pipeline.hashing import digest_payload
from ..specs import suite
from ..sweep.grid import SweepGrid, SweepPoint, spec_registry, tables_grid

__all__ = [
    "SERVE_SCHEMA", "ProtocolError", "job_id", "parse_sweep_request",
    "parse_synth_request", "point_from_task", "point_task", "sweep_task",
    "task_group",
]

#: Bump when task payloads or job-id derivation change; job ids are only
#: meaningful within one schema generation.
SERVE_SCHEMA = 1

_MODEL_LINE = re.compile(r"^\s*\.model\s+(\S+)", re.MULTILINE)


class ProtocolError(Exception):
    """A malformed or unsatisfiable request; ``status`` is the HTTP code."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def job_id(task: Dict[str, object]) -> str:
    """Content-addressed job identity: the digest of the canonical task."""
    return digest_payload({"serve-job": SERVE_SCHEMA, "task": task})


def task_group(task: Dict[str, object]) -> str:
    """The micro-batching affinity key of a task.

    Tasks with equal groups share worker-side caches (the generated state
    graph, the engine memos), so the batcher keeps them in one chunk:
    sweep points group by spec name, synthesis tasks by the digest of
    their ``.g`` text.
    """
    if task["kind"] == "point":
        return str(task["spec"])
    if task["kind"] == "synth":
        return "synth:" + digest_payload(task["stg"])[:16]
    return "sweep"


def _require_dict(payload, what: str) -> Dict[str, object]:
    if not isinstance(payload, dict):
        raise ProtocolError(f"{what} must be a JSON object, "
                            f"got {type(payload).__name__}")
    return payload


def _spec_text(payload: Dict[str, object]) -> Tuple[str, str]:
    """Resolve ``spec`` (registry name) or ``stg`` (inline text) to
    ``(name, .g text)``."""
    spec = payload.get("spec")
    stg = payload.get("stg")
    if (spec is None) == (stg is None):
        raise ProtocolError(
            "exactly one of 'spec' (a registry name) or 'stg' (inline .g "
            "text) is required")
    if spec is not None:
        if not isinstance(spec, str):
            raise ProtocolError("'spec' must be a string")
        if spec in suite.suite_names():
            return spec, suite.source_text(spec)
        registry = spec_registry()
        factory = registry.get(spec)
        if factory is None:
            raise ProtocolError(f"unknown spec {spec!r}; "
                                f"available: {sorted(registry)}", status=404)
        from ..petri.parser import write_stg
        return spec, write_stg(factory())
    if not isinstance(stg, str) or not stg.strip():
        raise ProtocolError("'stg' must be non-empty .g text")
    match = _MODEL_LINE.search(stg)
    return (match.group(1) if match else "stg"), stg


def _config_from_overrides(overrides,
                           max_verify_states: Optional[int]) -> FlowConfig:
    """A full :class:`FlowConfig` from partial payload overrides.

    Starts from the config defaults, overlays the request's fields, and
    normalizes the two spellings requests commonly use: ``delays`` as a
    3-list ``[input, output, internal]`` and ``keep_conc`` as a pair list
    in any order.  ``verify_max_states`` is clamped to the server budget.
    """
    overrides = dict(_require_dict(overrides if overrides is not None else {},
                                   "'config'"))
    payload = FlowConfig().to_payload()
    unknown = sorted(set(overrides) - set(payload))
    if unknown:
        raise ProtocolError(f"unknown config field(s) {unknown}; "
                            f"expected a subset of {sorted(payload)}")
    delays = overrides.get("delays")
    if isinstance(delays, (list, tuple)) and len(delays) == 3:
        from ..pipeline.config import delays_payload
        from ..timing.delays import DelayModel
        overrides["delays"] = delays_payload(DelayModel.by_kind(*delays))
    payload.update(overrides)
    if payload["keep_conc"]:
        try:
            payload["keep_conc"] = [
                list(pair) for pair in canonical_keep(
                    tuple(pair) for pair in payload["keep_conc"])]
        except TypeError:
            raise ProtocolError("'keep_conc' must be a list of event pairs, "
                                "e.g. [[\"li-\", \"ri-\"]]") from None
    if max_verify_states is not None and payload["verify"]:
        try:
            payload["verify_max_states"] = min(
                int(payload["verify_max_states"]), max_verify_states)
        except (TypeError, ValueError):
            raise ProtocolError(
                "'verify_max_states' must be an integer") from None
    try:
        return FlowConfig.from_payload(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid config: {exc}") from None


def parse_synth_request(payload,
                        max_verify_states: Optional[int] = None
                        ) -> Dict[str, object]:
    """Normalize a ``POST /synth`` body into a canonical ``synth`` task."""
    payload = _require_dict(payload, "request body")
    known = {"spec", "stg", "config", "name", "wait", "timeout"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(f"unknown request field(s) {unknown}; "
                            f"expected a subset of {sorted(known)}")
    name, text = _spec_text(payload)
    config = _config_from_overrides(payload.get("config"), max_verify_states)
    label = payload.get("name") or name
    if not isinstance(label, str):
        raise ProtocolError("'name' must be a string")
    return {"kind": "synth", "name": label, "stg": text,
            "config": config.to_payload()}


def point_task(point: SweepPoint) -> Dict[str, object]:
    """The canonical ``point`` task of one sweep grid point."""
    task = {"kind": "point", "spec": point.spec, "point": point.config()}
    task["point"]["variant"] = point.variant
    return task


def point_from_task(task: Dict[str, object]) -> SweepPoint:
    """Rebuild the :class:`SweepPoint` a ``point`` task names."""
    fields = task["point"]
    return SweepPoint(
        spec=fields["spec"],
        strategy=fields["strategy"],
        weight=fields["weight"],
        frontier=fields["frontier"],
        keep=tuple(tuple(pair) for pair in fields["keep"]),
        max_explored=fields["max_explored"],
        delays=tuple(fields["delays"]),
        verify=fields["verify"],
        verify_max_states=fields["verify_max_states"],
        variant=fields.get("variant", ""))


def parse_sweep_request(payload,
                        max_verify_states: Optional[int] = None) -> SweepGrid:
    """Build the sweep grid a ``POST /sweep`` body describes.

    Accepts the same axes as ``repro sweep``: ``specs``, ``strategies``,
    ``weights``, ``frontier``, ``max_explored``, ``keep_variants``,
    ``delays`` (a 3-list), ``verify`` and ``verify_max_states``.
    """
    payload = _require_dict(payload, "request body")
    known = {"specs", "strategies", "weights", "frontier", "max_explored",
             "keep_variants", "delays", "verify", "verify_max_states",
             "wait", "timeout"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(f"unknown sweep field(s) {unknown}; "
                            f"expected a subset of {sorted(known)}")
    verify = bool(payload.get("verify", False))
    verify_max_states = payload.get("verify_max_states")
    if verify and max_verify_states is not None:
        try:
            verify_max_states = (max_verify_states
                                 if verify_max_states is None
                                 else min(int(verify_max_states),
                                          max_verify_states))
        except (TypeError, ValueError):
            raise ProtocolError(
                "'verify_max_states' must be an integer") from None
    try:
        grid = tables_grid(
            specs=payload.get("specs"),
            strategies=payload.get("strategies",
                                   ("none", "beam", "best-first", "full")),
            weights=[float(w) for w in payload.get("weights",
                                                   (0.0, 0.5, 1.0))],
            frontier=payload.get("frontier"),
            include_keep_variants=bool(payload.get("keep_variants", True)),
            max_explored=payload.get("max_explored"),
            delays=payload.get("delays"),
            verify=verify,
            verify_max_states=verify_max_states)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid sweep request: {exc}") from None
    if not grid.points:
        raise ProtocolError("the requested grid is empty")
    return grid


def sweep_task(child_ids: List[str]) -> Dict[str, object]:
    """The parent task of a sweep: its children's job ids in grid order."""
    return {"kind": "sweep", "children": list(child_ids)}
