"""Synthesis-as-a-service, end to end: start a server, talk HTTP to it.

Spins up the full service in-process (`BackgroundServer`: its own event
loop, job manager and listening socket in a daemon thread), then drives
it exactly like an external client would -- plain HTTP with urllib:

1. POST /synth with a registry spec and verification enabled (blocking
   with ``wait`` for script convenience);
2. POST the same request again -- deduplicated, served from history;
3. fetch the synthesized-circuit artifact by content digest;
4. POST /sweep for a small grid and read back the report rows;
5. read /stats to see the dedup and batching counters.

Run:  python examples/serve_client.py
(requires PYTHONPATH=src when the package is not installed)
"""

import json
import tempfile
import urllib.request

from repro.serve import BackgroundServer


def call(base: str, path: str, payload=None):
    """One JSON request; POSTs when a payload is given."""
    if payload is None:
        request = urllib.request.Request(base + path)
    else:
        request = urllib.request.Request(
            base + path, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def main() -> None:
    store = tempfile.mkdtemp(prefix="repro-serve-example-")
    with BackgroundServer(store_root=store, workers=0) as server:
        base = f"http://127.0.0.1:{server.port}"
        print(f"server up at {base} (store: {store})")
        print(f"healthz      : {call(base, '/healthz')}")

        job = call(base, "/synth", {"spec": "half",
                                    "config": {"verify": True},
                                    "wait": True})
        summary = job["result"]["summary"]
        print(f"\nPOST /synth half: job {job['job'][:12]}… {job['status']}")
        print(f"  states       : {summary['states_max']} -> "
              f"{summary['states']}")
        print(f"  area         : {summary['area']}")
        print(f"  cycle time   : {summary['cycle_time']}")
        print(f"  verdict      : {summary['verdict']}")
        print(f"  stages       : {job['stages']}")
        print("  equations    :")
        for equation in job["result"]["equations"]:
            print(f"    {equation}")

        again = call(base, "/synth", {"spec": "half",
                                      "config": {"verify": True},
                                      "wait": True})
        assert again["job"] == job["job"], "identical request, same job id"
        print("\nsame request again: deduplicated, served from history")

        digest = job["result"]["artifacts"]["synthesize"]
        artifact = call(base, f"/artifacts/{digest}")
        print(f"artifact {digest[:12]}… is the {artifact['stage']} payload "
              f"({len(json.dumps(artifact['payload']))} bytes of JSON)")

        sweep = call(base, "/sweep", {"specs": ["lr"],
                                      "strategies": ["none", "full"],
                                      "wait": True})
        rows = sweep["result"]["rows"]
        print(f"\nPOST /sweep lr x (none, full): {sweep['points']} points, "
              f"{len(rows)} rows")
        for row in rows:
            label = row["variant"] or row["strategy"]
            print(f"  {row['spec']:4s} {label:10s} states={row['states']:3d} "
                  f"area={row['area']}")

        stats = call(base, "/stats")
        print(f"\n/stats: executed={stats['tasks_executed']} "
              f"dedup_hits={stats['dedup_hits']} chunks={stats['chunks']} "
              f"store_entries={stats['store']['entries']}")
    print("server stopped")


if __name__ == "__main__":
    main()
