"""Working with STG files: parse, analyse, reduce, re-derive, write back.

Shows the library as an STG manipulation tool (the petrify workflow): read
an astg-style ``.g`` specification, check implementability, reduce
concurrency, re-derive a Petri net for the reduced behaviour with the
theory of regions, and print the new ``.g`` text.

Run:  python examples/stg_files.py
"""

from repro import (check_implementability, full_reduction, generate_sg,
                   parse_stg, write_stg)
from repro.sg.resynthesis import (ResynthesisError, resynthesise_stg,
                                  verify_resynthesis)

SPEC = """
.model toy_pipeline
.inputs req
.outputs ack done
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
ack+ done+
done+ done-
done- ack+
.marking { <ack-,req+> <done-,ack+> }
.initial_state !req !ack !done
.end
"""


def main() -> None:
    stg = parse_stg(SPEC)
    sg = generate_sg(stg)
    report = check_implementability(sg)
    print(f"parsed {stg.name}: {len(sg)} states")
    print(f"  consistent={report.consistent} "
          f"speed_independent={report.speed_independent} "
          f"csc_conflicts={report.csc_conflict_count}")

    derived = resynthesise_stg(sg, name="toy_pipeline_regions")
    assert verify_resynthesis(sg, derived)
    print("\nre-derived STG (theory of regions), verified isomorphic:\n")
    print(write_stg(derived))

    reduced = full_reduction(sg)
    print(f"after full concurrency reduction: {len(reduced)} states")
    try:
        derived_reduced = resynthesise_stg(reduced)
        assert verify_resynthesis(reduced, derived_reduced)
        print("reduced behaviour also re-derivable as an STG:\n")
        print(write_stg(derived_reduced))
    except ResynthesisError as exc:
        # Some reduced SGs need label splitting (each event occurrence gets
        # its own transition) -- outside this reproduction's scope; the flow
        # keeps working on the SG directly in that case.
        print(f"reduced SG not directly region-synthesisable: {exc}")


if __name__ == "__main__":
    main()
