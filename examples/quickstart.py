"""Quickstart: synthesize an asynchronous controller from a partial spec.

The LR-process of the paper's Section 3: a handshake component with a
passive port ``l`` and an active port ``r`` that forwards control from left
to right, specified with four abstract channel actions -- no signal-level
reset events anywhere.  The flow expands the handshakes (4-phase, maximally
concurrent resets), explores concurrency reductions, resolves state
encoding, and maps the result onto a 2-input gate library.

Run:  python examples/quickstart.py
"""

from repro import ChannelRole, PartialSpec, run_flow


def main() -> None:
    # *[ l? ; r! ; r? ; l! ] -- four events, that's the whole spec.
    spec = PartialSpec("lr")
    spec.declare_channel("l", ChannelRole.PASSIVE)
    spec.declare_channel("r", ChannelRole.ACTIVE)
    spec.cycle("l?", "r!", "r?", "l!")
    spec.mark("<l!,l?>")

    result = run_flow(spec, name="lr-auto")
    report = result.report

    print("=== LR-process, automatic synthesis ===")
    print(f"expanded STG : {result.expanded}")
    print(f"initial SG   : {len(result.initial_sg)} states "
          f"(maximal reset concurrency)")
    print(f"reduced SG   : {len(report.sg)} states after concurrency reduction")
    print(f"CSC signals  : {report.csc_signal_count} inserted")
    print(f"mapped area  : {report.area} units")
    print(f"crit. cycle  : {report.cycle_time} (inputs=2, outputs=1)")
    print(f"input events : {report.input_event_count} on the cycle")
    print()
    print("Equations:")
    for signal, equation in sorted(report.circuit.equations.items()):
        print(f"  {equation}")
    print()
    print("Netlist:")
    print(report.circuit.netlist.to_verilog_like())


if __name__ == "__main__":
    main()
