"""The PAR component case study (Fig. 10): automatic vs manual design.

PAR launches two sub-processes in parallel and acknowledges when both are
done.  The constraint handed to the optimizer is minimal and semantic: keep
``b?`` and ``c?`` concurrent (the parallelism that defines the component).
Everything else -- all the 4-phase reset scheduling -- is left to the tool,
which finds an *asymmetric* circuit smaller than the Tangram compiler's
manual design, exactly as the paper reports.

Run:  python examples/par_component.py
"""

from repro import generate_sg, implement, implement_stg, reduce_concurrency
from repro.circuit.synthesize import synthesize_circuit
from repro.specs.par import PAR_KEEP_CONC, par_expanded, par_manual_stg
from repro.timing.critical_cycle import critical_cycle
from repro.timing.delays import gate_level_delays


def gate_cycle(report) -> float:
    """Cycle time under the paper's gate-level model (comb=1, seq=1.5, in=3)."""
    sequential = {signal for signal, impl in report.circuit.signals.items()
                  if impl.netlist.sequential_gates()}
    model = gate_level_delays(report.resolved_sg, sequential)
    return critical_cycle(report.resolved_sg, model).cycle_time


def main() -> None:
    print("=== PAR component (Fig. 10) ===\n")

    manual = implement_stg(par_manual_stg(), name="manual (Tangram)")
    print(f"manual design   : area={manual.area}, equations:")
    for equation in sorted(manual.circuit.equations.values()):
        print(f"    {equation}")

    sg = generate_sg(par_expanded())
    print(f"\nauto 4-phase expansion: {len(sg)} states, "
          f"maximally concurrent resets")

    search = reduce_concurrency(sg, keep_conc=PAR_KEEP_CONC,
                                max_explored=4000, patience=10**9)
    auto = implement(search.best, name="automatic")
    print(f"exploration     : {search.explored_count} SGs seen, "
          f"best cost {search.best_cost:.1f}")
    print(f"automatic design: area={auto.area}, equations:")
    for equation in sorted(auto.circuit.equations.values()):
        print(f"    {equation}")

    ratio = auto.area / manual.area
    print(f"\narea ratio auto/manual = {ratio:.2f} "
          f"(paper: ~0.88, i.e. 12% smaller)")
    print(f"gate-level cycle: manual={gate_cycle(manual)}, "
          f"auto={gate_cycle(auto)} (the asymmetric circuit trades cycle "
          f"time for area, as in the paper)")


if __name__ == "__main__":
    main()
