"""The LR-process design space: regenerate Table 1 interactively.

Seven implementations of the same four-event specification, from the
hand-designed Q-module to the fully reduced two-wire solution, differing
only in how the tool schedules the non-functional (reset) events.

Run:  python examples/lr_design_space.py
"""

from repro import full_reduction, generate_sg, implement, implement_stg
from repro.specs.lr import TABLE1_KEEP_CONC, lr_expanded, q_module_stg


def show(report) -> None:
    name, area, csc, cycle, inputs = report.row()
    flag = "" if report.csc_resolved else "  (CSC unresolved, area estimated)"
    print(f"{name:18s} area={area:<6} #CSC={csc} cycle={cycle:<5} "
          f"inputs={inputs}{flag}")


def main() -> None:
    print("=== Table 1: LR-process area/performance trade-off ===\n")

    # The hand design: right handshake nested inside the left one.
    show(implement_stg(q_module_stg(), name="Q-module (hand)"))

    sg = generate_sg(lr_expanded())

    # Everything sequential: collapses to two wires (lo = ri, ro = li).
    full = implement(full_reduction(sg), name="Full reduction")
    show(full)
    for equation in full.circuit.equations.values():
        print(f"{'':18s}   {equation}")

    # No reduction at all: pay for the concurrency with 2 state signals.
    show(implement(sg, name="Max. concurrency"))

    # Keep exactly one pair of reset events concurrent.
    for name, keep in TABLE1_KEEP_CONC.items():
        reduced = full_reduction(sg, keep_conc=keep)
        show(implement(reduced, name=name))

    print("\nEvery row is a *valid reduction* of the same 16-state expansion;"
          "\nthe spread is the optimization space the paper's Fig. 9 explores.")


if __name__ == "__main__":
    main()
