"""The MMU controller case study (Table 2): reshuffling at scale.

A four-channel memory-management controller (request, lookup, translate,
read) whose 4-phase expansion has 264 states and heavy CSC trouble.
Reshuffling the reset phases brings the area below half of the original
without losing cycle time -- the paper's headline Table 2 result.

Run:  python examples/mmu_controller.py        (takes a couple of minutes)
"""

from repro import full_reduction, generate_sg, implement, reduce_concurrency
from repro.specs.mmu import TABLE2_KEEP_CONC, keep_conc_for, mmu_expanded


def show(report) -> None:
    name, area, csc, cycle, inputs = report.row()
    flag = "" if report.csc_resolved else "  (estimate)"
    print(f"{name:18s} area={area:<6} #CSC={csc} cycle={cycle:<5} "
          f"inputs={inputs}{flag}")


def main() -> None:
    print("=== Table 2: MMU controller ===\n")
    sg = generate_sg(mmu_expanded())
    print(f"original (max concurrency): {len(sg)} states\n")

    original = implement(sg, name="original", max_csc_signals=3)
    show(original)

    search = reduce_concurrency(sg, max_explored=400, patience=200)
    show(implement(search.best, name="original reduced"))

    csc_biased = reduce_concurrency(sg, weight=0.1, max_explored=400,
                                    patience=200)
    show(implement(csc_biased.best, name="csc reduced"))

    for name, channels in TABLE2_KEEP_CONC.items():
        reduced = full_reduction(sg, keep_conc=keep_conc_for(channels),
                                 size_frontier=3)
        show(implement(reduced, name=name))

    print("\nReduced implementations run at less than half of the original's"
          "\narea with comparable critical cycles, matching Table 2's shape.")


if __name__ == "__main__":
    main()
